// Package fleet turns a set of wsrsd daemons into one fault-tolerant
// simulation backend: a coordinator shards grid cells across the
// members by their sha256 content address (consistent hashing, so each
// cell has one cache home and the fleet-wide hit rate survives
// resharding), scatters single-cell jobs, and gathers the results in
// cell order — byte-identical to a local wsrs.RunGrid run.
//
// Robustness is the point, not an afterthought: per-cell deadlines
// with jittered exponential backoff across ring successors, hedged
// requests for stragglers, health-probe-driven membership (eject on
// consecutive /readyz failures, re-admit on recovery, cells re-hash to
// the survivors), a per-backend circuit breaker, and graceful
// degradation to local execution when no backend is usable. Failure
// paths are traced via internal/otrace and counted on the telemetry
// registry. The sibling package fleet/chaos injects the failures the
// tests prove this machinery against.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// ringPoint is one virtual node: a position on the 64-bit ring owned
// by a member.
type ringPoint struct {
	pos    uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Cells map onto
// it by their content address; members own the arcs their virtual
// nodes cover. Removing a member moves only that member's arcs to its
// ring successors — every other cell keeps its cache home, which is
// what keeps the fleet-wide hit rate intact through failures.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by pos
	members map[string]bool
}

// DefaultVnodes is the virtual-node count per member NewRing selects
// for vnodes <= 0 — enough that a three-member fleet shards within a
// few percent of even.
const DefaultVnodes = 64

// NewRing builds an empty ring with the given virtual-node count per
// member.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// pointOf hashes an arbitrary string onto the ring.
func pointOf(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// cellPoint maps a cell's hex sha256 content address onto the ring.
// The digest already is a uniform hash, so its first eight bytes are
// the position directly; a malformed digest falls back to re-hashing.
func cellPoint(digest string) uint64 {
	if b, err := hex.DecodeString(digest); err == nil && len(b) >= 8 {
		return binary.BigEndian.Uint64(b[:8])
	}
	return pointOf(digest)
}

// Add inserts a member (idempotent), placing its virtual nodes.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{pos: pointOf(fmt.Sprintf("%s#%d", member, i)), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove ejects a member (idempotent), freeing its arcs to the ring
// successors.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the live member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Has reports whether member is live.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[member]
}

// Members returns the live members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Home returns the cell's cache home: the owner of the first virtual
// node at or after the cell's ring position. ok is false on an empty
// ring.
func (r *Ring) Home(digest string) (string, bool) {
	seq := r.Seq(digest, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Seq returns up to n distinct members in ring order starting at the
// cell's home (n <= 0 returns all): the retry/hedge candidate order,
// so attempt k+1 lands on the member that would own the cell if the
// first k were ejected.
func (r *Ring) Seq(digest string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	pos := cellPoint(digest)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
