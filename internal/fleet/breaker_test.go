package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	if !b.Allow() {
		t.Fatal("fresh breaker refuses traffic")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %s, want closed", b.State())
	}
	if !b.Failure() {
		t.Fatal("third failure did not report the open transition")
	}
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("open breaker admits traffic")
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure run did not reset on success")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admits before the cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown expiry does not admit the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admits a second concurrent probe")
	}
	// A failed probe re-opens for another full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker never probes again")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestHealthTrackerEjectAndReadmit(t *testing.T) {
	h := newHealthTracker(2)
	if h.observe("a", false) != noChange {
		t.Fatal("single failure ejected below the threshold")
	}
	if h.observe("a", false) != ejected {
		t.Fatal("threshold failures did not eject")
	}
	if h.observe("a", false) != noChange {
		t.Fatal("already-down member ejected twice")
	}
	if !h.isDown("a") {
		t.Fatal("ejected member not marked down")
	}
	if h.observe("a", true) != readmitted {
		t.Fatal("recovery did not readmit")
	}
	if h.isDown("a") || h.observe("a", true) != noChange {
		t.Fatal("readmitted member still down")
	}
	// A success mid-run resets the failure count.
	h.observe("b", false)
	h.observe("b", true)
	if h.observe("b", false) != noChange {
		t.Fatal("failure count survived an intervening success")
	}
}
