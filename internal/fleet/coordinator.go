package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	"wsrs"
	"wsrs/internal/otrace"
	flightrec "wsrs/internal/otrace/flight"
	"wsrs/internal/serve"
	"wsrs/internal/telemetry"
)

// Options sizes a Coordinator. The zero value of every field selects
// a sane default; only Backends is required (empty means every cell
// runs locally — a fleet of zero degrades to wsrs.RunGrid).
type Options struct {
	// Backends are the member daemons' base URLs (http://host:port).
	// Membership is fixed at startup; health probes eject and readmit
	// within this set.
	Backends []string
	// Vnodes is the virtual-node count per member (<= 0 selects
	// DefaultVnodes).
	Vnodes int

	// MaxAttempts bounds dispatches per cell across ring successors
	// (<= 0 selects 4); once exhausted the cell runs locally.
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the jittered exponential retry
	// delay (<= 0 select 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter launches a second attempt on the next ring candidate
	// when the first has not resolved in time (0 selects 750ms; < 0
	// disables hedging).
	HedgeAfter time.Duration
	// CellTimeout is the per-attempt deadline (<= 0 selects 5m).
	CellTimeout time.Duration
	// PollInterval paces the job-status polling of a dispatched cell
	// (<= 0 selects 5ms).
	PollInterval time.Duration

	// ProbeInterval paces the background /readyz prober (0 selects 1s;
	// < 0 disables it — tests call ProbeNow directly). ProbeTimeout
	// bounds one probe (<= 0 selects 500ms). EjectAfter is the
	// consecutive-failure threshold (<= 0 selects 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	EjectAfter    int

	// BreakerThreshold/BreakerCooldown configure the per-backend
	// circuit breaker (<= 0 select 3 failures and 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ScatterWidth bounds concurrent cells in RunCells (<= 0 selects
	// max(GOMAXPROCS, 4 per backend)).
	ScatterWidth int

	// Registry receives the fleet metric families (nil creates a
	// private one); wsrsd passes the daemon registry so one /metrics
	// scrape covers both layers. Tracer receives the fleet.cell spans
	// (nil creates a private recorder). Logger gets membership and
	// breaker transitions (nil discards). HTTP overrides the transport
	// (nil selects http.DefaultClient).
	Registry *telemetry.Registry
	Tracer   *otrace.Recorder
	Logger   *slog.Logger
	HTTP     *http.Client

	// Flight receives fleet fault observations (failed attempts,
	// hedges, breaker opens, ejections) and triggers black-box
	// postmortem snapshots — debounced per reason — on failed
	// attempts, hedge fires, breaker-open, ejection and fleet
	// exhaustion. nil disables recording — every flight call is
	// nil-receiver safe.
	Flight *flightrec.Recorder

	// Seed fixes the jitter RNG for reproducible tests (0 seeds from
	// the clock).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 750 * time.Millisecond
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 5 * time.Minute
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 2
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.ScatterWidth <= 0 {
		o.ScatterWidth = max(runtime.GOMAXPROCS(0), 4*len(o.Backends))
	}
	return o
}

// Coordinator scatters cells across a wsrsd fleet and gathers the
// results. It implements serve.CellRunner (wsrsd -peers wires it
// behind the job API) and serve.PeerFetcher (member daemons use the
// ring to find a digest's cache home). Build with New, stop the
// prober with Close.
type Coordinator struct {
	opts   Options
	ring   *Ring
	reg    *telemetry.Registry
	tracer *otrace.Recorder
	fr     *flightrec.Recorder // nil disables; every call is nil-safe
	log    *slog.Logger

	clients  map[string]*serve.Client // immutable after New
	breakers map[string]*Breaker
	health   *healthTracker

	smu    sync.Mutex
	bstats map[string]*backendStat // per-backend dispatch accounting

	rmu sync.Mutex
	rng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a coordinator over the configured backends (all admitted
// until probes say otherwise) and starts the background prober unless
// ProbeInterval < 0.
func New(o Options) *Coordinator {
	o = o.withDefaults()
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tr := o.Tracer
	if tr == nil {
		tr = otrace.NewRecorder(0)
	}
	lg := o.Logger
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		opts:     o,
		ring:     NewRing(o.Vnodes),
		reg:      reg,
		tracer:   tr,
		fr:       o.Flight,
		log:      lg,
		clients:  make(map[string]*serve.Client, len(o.Backends)),
		breakers: make(map[string]*Breaker, len(o.Backends)),
		health:   newHealthTracker(o.EjectAfter),
		bstats:   make(map[string]*backendStat, len(o.Backends)),
		rng:      rand.New(rand.NewSource(seed)),
		stop:     make(chan struct{}),
	}
	for _, b := range o.Backends {
		c.ring.Add(b)
		c.clients[b] = &serve.Client{Base: b, HTTP: o.HTTP}
		c.breakers[b] = NewBreaker(o.BreakerThreshold, o.BreakerCooldown)
		c.bstats[b] = &backendStat{}
	}
	c.initMetrics()
	if o.ProbeInterval > 0 && len(o.Backends) > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c
}

// Close stops the background prober. In-flight cells are unaffected.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Registry exposes the coordinator's metric registry.
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// Tracer exposes the coordinator's span recorder.
func (c *Coordinator) Tracer() *otrace.Recorder { return c.tracer }

// Healthy returns the backends currently in the ring.
func (c *Coordinator) Healthy() []string { return c.ring.Members() }

// permanentError marks a failure retrying elsewhere cannot fix: the
// simulation itself rejected or deterministically failed the cell, so
// every backend (and a local run) would answer the same.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// attemptResult is one dispatched leg's outcome (original or hedge).
type attemptResult struct {
	res     wsrs.Result
	err     error
	backend string
	hedged  bool
}

// RunCell resolves one cell through the fleet: dispatch to its cache
// home, retry ring successors with jittered exponential backoff,
// hedge stragglers, and — when no backend is usable or every attempt
// failed — degrade gracefully to a local simulation, so a flaky fleet
// changes latency, never results. It implements serve.CellRunner.
func (c *Coordinator) RunCell(ctx context.Context, id serve.CellID) (wsrs.Result, time.Duration, error) {
	start := time.Now()
	digest := id.Digest()
	// The span parents to whatever trace context rides the ctx — in
	// coordinator-daemon mode the serve layer's simulate span — so the
	// job lifecycle, the fleet scatter and (via header propagation) the
	// backends' own spans share one trace ID.
	sp := c.tracer.Begin("fleet.cell", otrace.FromContext(ctx))
	sp.SetStr("kernel", id.Kernel)
	sp.SetStr("config", id.Config)
	ctx = otrace.ContextWith(ctx, sp.Ctx())
	outcome := "remote"
	defer func() {
		sp.SetStr("outcome", outcome)
		c.tracer.End(&sp)
		c.reg.Counter(mCells+telemetry.Labels("outcome", outcome), helpCells).Inc()
		c.reg.Histogram(mCellMs, helpCellMs).Observe(uint64(time.Since(start).Milliseconds()))
	}()

	backoff := c.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		backend := c.pickBackend(digest, attempt)
		if backend == "" {
			// Fleet empty (or every breaker open): run the cell here.
			outcome = "local"
			c.reg.Counter(mFallbacks+telemetry.Labels("reason", "no-backend"), helpFallbacks).Inc()
			res, err := c.runLocal(ctx, id)
			if err != nil {
				outcome = failOutcome(ctx, err)
			}
			return res, time.Since(start), err
		}
		if attempt > 0 {
			c.reg.Counter(mRetries, helpRetries).Inc()
			if !sleepCtx(ctx, c.jitter(backoff)) {
				outcome = "canceled"
				return wsrs.Result{}, time.Since(start), ctx.Err()
			}
			backoff = min(backoff*2, c.opts.MaxBackoff)
		}
		res, err := c.attempt(ctx, backend, digest, id)
		if err == nil {
			sp.SetStr("backend", backend)
			sp.SetInt("attempts", int64(attempt+1))
			return res, time.Since(start), nil
		}
		if ctx.Err() != nil {
			outcome = "canceled"
			return wsrs.Result{}, time.Since(start), ctx.Err()
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			outcome = "failed"
			return wsrs.Result{}, time.Since(start), pe.err
		}
		lastErr = err
	}
	// Every attempt failed: the fleet is misbehaving, not the cell.
	outcome = "local"
	c.reg.Counter(mFallbacks+telemetry.Labels("reason", "exhausted"), helpFallbacks).Inc()
	c.fr.Snapshot("fleet-exhausted", digest, lastErr.Error())
	c.log.LogAttrs(ctx, slog.LevelWarn, "fleet attempts exhausted; running cell locally",
		slog.String("kernel", id.Kernel),
		slog.String("config", id.Config),
		slog.String("last_error", lastErr.Error()))
	res, err := c.runLocal(ctx, id)
	if err != nil {
		outcome = failOutcome(ctx, err)
		err = fmt.Errorf("fleet: %d attempts failed (last: %v); local fallback: %w",
			c.opts.MaxAttempts, lastErr, err)
	}
	return res, time.Since(start), err
}

func failOutcome(ctx context.Context, err error) string {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return "failed"
}

// pickBackend chooses attempt's target: the cell's ring sequence
// rotated by the attempt number (home first, then successors), the
// first member whose breaker admits traffic.
func (c *Coordinator) pickBackend(digest string, attempt int) string {
	seq := c.ring.Seq(digest, 0)
	if len(seq) == 0 {
		return ""
	}
	for i := range seq {
		b := seq[(attempt+i)%len(seq)]
		if c.breakers[b].Allow() {
			return b
		}
	}
	return ""
}

// hedgeBackend picks a second target distinct from primary for a
// straggling attempt.
func (c *Coordinator) hedgeBackend(digest, primary string) string {
	for _, b := range c.ring.Seq(digest, 0) {
		if b != primary && c.breakers[b].Allow() {
			return b
		}
	}
	return ""
}

// attempt dispatches one cell to primary under the per-attempt
// deadline; if HedgeAfter elapses first, a hedge launches on the next
// ring candidate and the first leg to finish wins. Breakers see every
// leg's outcome.
func (c *Coordinator) attempt(ctx context.Context, primary, digest string, id serve.CellID) (wsrs.Result, error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.CellTimeout)
	defer cancel() // the losing leg aborts as soon as a winner returns
	parent := otrace.FromContext(ctx)
	ch := make(chan attemptResult, 2)
	run := func(backend string, hedged bool) {
		c.reg.Counter(mAttempts, helpAttempts).Inc()
		// Each leg — original or hedge — gets its own span under the
		// fleet.cell span, and its context rides the request headers so
		// the backend's spans parent here. A losing hedge leg ends with
		// outcome "canceled": visibly abandoned on the stitched timeline.
		leg := c.tracer.Begin("fleet.attempt", parent)
		leg.SetStr("backend", backend)
		leg.SetBool("hedged", hedged)
		go func() {
			legStart := time.Now()
			res, err := c.runOn(otrace.ContextWith(actx, leg.Ctx()), backend, id)
			c.recordAttempt(backend, time.Since(legStart), err)
			switch {
			case err == nil:
				leg.SetStr("outcome", "ok")
			case actx.Err() != nil && errors.Is(err, context.Canceled):
				leg.SetStr("outcome", "canceled")
			default:
				leg.SetStr("outcome", "failed")
			}
			c.tracer.End(&leg)
			ch <- attemptResult{res: res, err: err, backend: backend, hedged: hedged}
		}()
	}
	run(primary, false)

	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		tm := time.NewTimer(c.opts.HedgeAfter)
		defer tm.Stop()
		hedgeC = tm.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			br := c.breakers[out.backend]
			if out.err == nil {
				br.Success()
				if out.hedged {
					c.reg.Counter(mHedgeWins, helpHedgeWins).Inc()
					c.recordHedgeWin(out.backend)
				}
				return out.res, nil
			}
			if actx.Err() == nil || !errors.Is(out.err, context.Canceled) {
				// A real backend failure, not our own cancellation. The
				// black box snapshots it (debounced per reason) so every
				// chaos mode leaves a postmortem naming the cell digest.
				c.fr.Record(flightrec.Event{
					Kind: flightrec.KindFault, Name: "attempt-failed",
					Digest: digest, Detail: out.backend + ": " + out.err.Error(),
				})
				c.fr.Snapshot("attempt-failed", digest, out.backend+": "+out.err.Error())
				if br.Failure() {
					c.reg.Counter(mBreakerOpen, helpBreakerOpen).Inc()
					c.log.LogAttrs(ctx, slog.LevelWarn, "circuit breaker opened",
						slog.String("backend", out.backend),
						slog.String("error", out.err.Error()))
					c.fr.Snapshot("breaker-open", digest, out.backend+": "+out.err.Error())
				}
			}
			var pe *permanentError
			if errors.As(out.err, &pe) {
				return wsrs.Result{}, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			if hb := c.hedgeBackend(digest, primary); hb != "" {
				c.reg.Counter(mHedges, helpHedges).Inc()
				// A straggler is a soft fault: the hedge both routes around
				// it and snapshots the black box (debounced), so a latency
				// incident leaves evidence even when every cell resolves.
				c.fr.Record(flightrec.Event{
					Kind: flightrec.KindFault, Name: "hedge",
					Digest: digest, Detail: primary + " -> " + hb,
				})
				c.fr.Snapshot("hedge-fired", digest, primary+" -> "+hb)
				run(hb, true)
				pending++
			}
		case <-actx.Done():
			return wsrs.Result{}, actx.Err()
		}
	}
	return wsrs.Result{}, firstErr
}

// runOn resolves one cell on one backend through the job API: submit
// a single-cell job, poll to a terminal state, fetch the result. Any
// transport or server hiccup is a retryable error; a 400 or a failed
// job is permanent (the cell, not the backend, is at fault).
func (c *Coordinator) runOn(ctx context.Context, backend string, id serve.CellID) (wsrs.Result, error) {
	client := c.clients[backend]
	st, err := client.Submit(ctx, &serve.JobRequest{
		Cells:     []serve.CellSpec{{Kernel: id.Kernel, Config: id.Config, Policy: id.Policy, Mods: id.Mods, Seed: id.Seed}},
		Warmup:    id.Warmup,
		Measure:   id.Measure,
		Seed:      id.Seed,
		Telemetry: id.Telemetry,
		Label:     "fleet",
	})
	if err != nil {
		var ae *serve.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusBadRequest {
			// The member rejected the cell itself: relay its envelope
			// (with its trace_id) instead of re-wrapping the message.
			return wsrs.Result{}, &permanentError{&serve.BackendError{
				Member: backend, Status: ae.Status, Env: ae.Envelope,
			}}
		}
		return wsrs.Result{}, fmt.Errorf("submit to %s: %w", backend, err)
	}
	st, err = client.Wait(ctx, st.ID, c.opts.PollInterval)
	if err != nil {
		if ctx.Err() != nil {
			// We are abandoning the job: tell the backend to stop
			// simulating for nobody. Best effort on a fresh context.
			cctx, ccancel := context.WithTimeout(context.Background(), time.Second)
			_ = client.Cancel(cctx, st.ID)
			ccancel()
		}
		return wsrs.Result{}, fmt.Errorf("wait on %s: %w", backend, err)
	}
	switch st.State {
	case serve.StateDone:
	case serve.StateFailed:
		// The simulation itself failed on the member: permanent, and the
		// member's job record (trace ID included) is the diagnosis.
		return wsrs.Result{}, &permanentError{&serve.BackendError{
			Member: backend,
			Env:    &serve.ErrorEnvelope{Msg: st.Error, TraceID: st.TraceID, Member: backend},
		}}
	default:
		return wsrs.Result{}, fmt.Errorf("job on %s ended %s", backend, st.State)
	}
	out, err := client.Results(ctx, st.ID)
	if err != nil {
		return wsrs.Result{}, fmt.Errorf("results from %s: %w", backend, err)
	}
	if len(out) != 1 {
		return wsrs.Result{}, fmt.Errorf("results from %s: %d results for 1 cell", backend, len(out))
	}
	return out[0], nil
}

// runLocal is the degradation path: the exact single-cell RunGrid
// call a member daemon would make, so a fleetless (or fully failed)
// coordinator still produces byte-identical results.
func (c *Coordinator) runLocal(ctx context.Context, id serve.CellID) (wsrs.Result, error) {
	opts := wsrs.SimOpts{
		WarmupInsts:  id.Warmup,
		MeasureInsts: id.Measure,
		Seed:         id.Seed,
		Telemetry:    id.Telemetry,
		Cancel:       ctx.Done(),
	}
	cell := wsrs.GridCell{
		Kernel: id.Kernel,
		Config: wsrs.ConfigName(id.Config),
		Policy: id.Policy,
		Seed:   id.Seed,
	}
	if id.Mods != "" {
		ms, err := wsrs.ParseMods(id.Mods)
		if err != nil {
			return wsrs.Result{}, err
		}
		cell.Mods = ms
		cell.ModsKey = id.Mods
	}
	out, err := wsrs.RunGrid([]wsrs.GridCell{cell}, opts, 1)
	if err != nil {
		return wsrs.Result{}, err
	}
	return out[0].Result, nil
}

// RunCells scatters the cells across the fleet and gathers the
// results in cell order: the distributed counterpart of wsrs.RunGrid,
// returning — for a healthy or a failing fleet alike — exactly the
// results a local run would produce. The returned error is the first
// failure in cell order (nil when every cell resolved).
func (c *Coordinator) RunCells(ctx context.Context, ids []serve.CellID) ([]wsrs.Result, error) {
	out := make([]wsrs.Result, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, c.opts.ScatterWidth)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, _, err := c.RunCell(ctx, ids[i])
			out[i], errs[i] = res, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cell %d (%s/%s): %w", i, ids[i].Kernel, ids[i].Config, err)
		}
	}
	return out, nil
}

// FetchPeer implements serve.PeerFetcher for member daemons: a local
// cache miss first asks the digest's consistent-hash home whether it
// already holds the result. ok=false on any miss or failure — the
// caller just simulates locally.
func (c *Coordinator) FetchPeer(ctx context.Context, digest string) (wsrs.Result, bool) {
	home, ok := c.ring.Home(digest)
	if !ok {
		return wsrs.Result{}, false
	}
	res, ok := c.clients[home].FetchCache(ctx, digest)
	outcome := "miss"
	if ok {
		outcome = "hit"
	}
	c.reg.Counter(mPeerFetch+telemetry.Labels("outcome", outcome), helpPeerFetch).Inc()
	return res, ok
}

// jitter spreads a backoff delay over [d/2, 3d/2) so synchronized
// failures do not retry in lockstep.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

// sleepCtx sleeps d unless ctx ends first (false when it did).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
