package fleet

import (
	"fmt"
	"testing"

	"wsrs/internal/serve"
)

func testDigests(n int) []string {
	out := make([]string, n)
	for i := range out {
		id := serve.CellID{Kernel: "gzip", Config: "RR 256", Seed: int64(i + 1), Warmup: 1000, Measure: 5000}
		out[i] = id.Digest()
	}
	return out
}

func TestRingDeterministicHome(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		for _, m := range []string{"http://c", "http://a", "http://b"} {
			r.Add(m)
		}
		return r
	}
	a, b := build(), build()
	for _, d := range testDigests(50) {
		ha, _ := a.Home(d)
		hb, _ := b.Home(d)
		if ha != hb {
			t.Fatalf("digest %s homes differ: %s vs %s", d[:8], ha, hb)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://a", "http://b", "http://c"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	digests := testDigests(600)
	for _, d := range digests {
		h, ok := r.Home(d)
		if !ok {
			t.Fatal("no home on a populated ring")
		}
		counts[h]++
	}
	for _, m := range members {
		// A perfectly even split is 200; demand better than a 4x skew.
		if counts[m] < 50 {
			t.Fatalf("member %s owns only %d of %d cells: %v", m, counts[m], len(digests), counts)
		}
	}
}

func TestRingRemoveMovesOnlyOwnedCells(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"http://a", "http://b", "http://c"} {
		r.Add(m)
	}
	digests := testDigests(300)
	before := make(map[string]string, len(digests))
	for _, d := range digests {
		before[d], _ = r.Home(d)
	}
	r.Remove("http://b")
	for _, d := range digests {
		after, ok := r.Home(d)
		if !ok {
			t.Fatal("ring emptied by removing one of three members")
		}
		if after == "http://b" {
			t.Fatal("removed member still owns cells")
		}
		// The consistency contract: cells not homed on the removed
		// member keep their home.
		if before[d] != "http://b" && after != before[d] {
			t.Fatalf("cell %s moved from %s to %s although its home stayed alive", d[:8], before[d], after)
		}
	}
	// Re-admission restores the original assignment exactly.
	r.Add("http://b")
	for _, d := range digests {
		if h, _ := r.Home(d); h != before[d] {
			t.Fatalf("cell %s did not return to %s after readmission", d[:8], before[d])
		}
	}
}

func TestRingSeqDistinctAndHomeFirst(t *testing.T) {
	r := NewRing(0)
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	for _, m := range members {
		r.Add(m)
	}
	for _, d := range testDigests(40) {
		seq := r.Seq(d, 0)
		if len(seq) != len(members) {
			t.Fatalf("Seq returned %d members, want %d", len(seq), len(members))
		}
		home, _ := r.Home(d)
		if seq[0] != home {
			t.Fatalf("Seq[0] = %s, want the home %s", seq[0], home)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Seq repeats member %s", m)
			}
			seen[m] = true
		}
		if got := r.Seq(d, 2); len(got) != 2 || got[0] != seq[0] || got[1] != seq[1] {
			t.Fatalf("Seq(d, 2) = %v, want prefix of %v", got, seq)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Home("abc"); ok {
		t.Fatal("empty ring claims a home")
	}
	if seq := r.Seq("abc", 3); len(seq) != 0 {
		t.Fatalf("empty ring returns candidates: %v", seq)
	}
	r.Add("http://a")
	r.Remove("http://a")
	if r.Len() != 0 {
		t.Fatal("add+remove left members behind")
	}
}

func BenchmarkCoreRingSeq(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("http://backend-%d", i))
	}
	digests := testDigests(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Seq(digests[i%len(digests)], 3)
	}
}
