package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"wsrs/internal/explore"
	"wsrs/internal/serve"
	"wsrs/internal/telemetry"
)

// startFront boots a wsrsd front-end with the given options behind an
// httptest listener and returns a client pointed at it.
func startFront(t *testing.T, o serve.Options) *serve.Client {
	t.Helper()
	s, err := serve.New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return &serve.Client{Base: ts.URL}
}

func exploreRequest() *serve.ExploreRequest {
	return &serve.ExploreRequest{
		Request: explore.Request{
			Space: explore.Space{
				Clusters:   []int{2, 4},
				Widths:     []int{2},
				Regs:       []int{512},
				IQSizes:    []int{16},
				ROBSizes:   []int{64},
				Specialize: []string{explore.SpecNone, explore.SpecWSRS},
				Policies:   []string{"RR"},
				Kernels:    []string{"gzip"},
			},
			Strategy: explore.StrategyGrid,
			Seed:     1,
			Warmup:   1000,
			Measure:  5000,
		},
		Label: "fleet-identity",
	}
}

func runExplore(t *testing.T, c *serve.Client) []byte {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitExplore(ctx, exploreRequest())
	if err != nil {
		t.Fatalf("SubmitExplore: %v", err)
	}
	final, err := c.WaitExplore(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("WaitExplore: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("explore state = %s (%s), want done", final.State, final.Error)
	}
	doc, err := c.Frontier(ctx, final.ID)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	return doc
}

// TestExploreThroughCoordinatorMatchesLocal is the fleet half of the
// exploration determinism contract: the same explore request run on a
// standalone daemon and on a coordinator front-end that scatters its
// cells across member daemons must serve byte-identical frontier
// documents.
func TestExploreThroughCoordinatorMatchesLocal(t *testing.T) {
	local := startFront(t, serve.Options{Workers: 2})
	want := runExplore(t, local)

	var backends []string
	for i := 0; i < 2; i++ {
		_, ts := startBackend(t)
		backends = append(backends, ts.URL)
	}
	c := newTestCoordinator(t, backends, nil)
	front := startFront(t, serve.Options{Workers: 2, Runner: c})
	got := runExplore(t, front)

	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator-mode frontier differs from the local run:\nfleet: %.300s\nlocal: %.300s",
			got, want)
	}
	if n := counter(c.Registry(), mCells+telemetry.Labels("outcome", "remote")); n == 0 {
		t.Fatal("coordinator ran no cells remotely; the explore never reached the fleet")
	}
}
