package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsrs"
	"wsrs/internal/serve"
	"wsrs/internal/telemetry"
)

// testCells is a small grid spanning kernels, configs and seeds so
// cells shard across the whole fleet.
func testCells(t *testing.T) []serve.CellID {
	t.Helper()
	var out []serve.CellID
	for _, k := range []string{"gzip", "mcf"} {
		for _, cfg := range []string{string(wsrs.ConfRR256), string(wsrs.ConfWSRR384)} {
			for seed := int64(1); seed <= 2; seed++ {
				out = append(out, serve.CellID{
					Kernel: k, Config: cfg, Seed: seed, Warmup: 1000, Measure: 5000,
				})
			}
		}
	}
	return out
}

// localResults is the ground truth: the same cells through a direct
// wsrs.RunGrid, exactly as a member daemon would run them.
func localResults(t *testing.T, ids []serve.CellID) []wsrs.Result {
	t.Helper()
	out := make([]wsrs.Result, len(ids))
	for i, id := range ids {
		res, err := wsrs.RunGrid([]wsrs.GridCell{{
			Kernel: id.Kernel, Config: wsrs.ConfigName(id.Config), Policy: id.Policy, Seed: id.Seed,
		}}, wsrs.SimOpts{
			WarmupInsts: id.Warmup, MeasureInsts: id.Measure, Seed: id.Seed, Telemetry: id.Telemetry,
		}, 1)
		if err != nil {
			t.Fatalf("local cell %d: %v", i, err)
		}
		out[i] = res[0].Result
	}
	return out
}

// mustEncode is the byte-identity probe: both sides of every
// comparison go through the same encoding.
func mustEncode(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// startBackend boots one real wsrsd core behind an httptest listener.
func startBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func counter(reg *telemetry.Registry, name string) uint64 {
	var total uint64
	for k, v := range reg.Snapshot() {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

func newTestCoordinator(t *testing.T, backends []string, mod func(*Options)) *Coordinator {
	t.Helper()
	o := Options{
		Backends:      backends,
		ProbeInterval: -1, // membership changes only via explicit ProbeNow
		HedgeAfter:    -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		CellTimeout:   30 * time.Second,
		Seed:          1,
	}
	if mod != nil {
		mod(&o)
	}
	c := New(o)
	t.Cleanup(c.Close)
	return c
}

func TestScatterGatherMatchesLocal(t *testing.T) {
	var backends []string
	for i := 0; i < 3; i++ {
		_, ts := startBackend(t)
		backends = append(backends, ts.URL)
	}
	c := newTestCoordinator(t, backends, nil)
	ids := testCells(t)

	got, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	want := localResults(t, ids)
	if mustEncode(t, got) != mustEncode(t, want) {
		t.Fatal("fleet results are not byte-identical to the local run")
	}
	if n := counter(c.Registry(), mRetries); n != 0 {
		t.Fatalf("healthy fleet retried %d times", n)
	}
	if n := counter(c.Registry(), mCells+telemetry.Labels("outcome", "remote")); n != uint64(len(ids)) {
		t.Fatalf("remote cells = %d, want %d", n, len(ids))
	}

	// The second pass is pure cache: same bytes again, zero new sims.
	again, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("second RunCells: %v", err)
	}
	if mustEncode(t, again) != mustEncode(t, want) {
		t.Fatal("cached fleet results diverge from the local run")
	}
}

func TestRetriesRouteAroundDeadBackend(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	var backends []string
	for i := 0; i < 2; i++ {
		_, ts := startBackend(t)
		backends = append(backends, ts.URL)
	}
	backends = append(backends, deadURL)

	c := newTestCoordinator(t, backends, nil)
	ids := testCells(t)
	got, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("RunCells with one dead backend: %v", err)
	}
	if mustEncode(t, got) != mustEncode(t, localResults(t, ids)) {
		t.Fatal("results with a dead backend are not byte-identical to the local run")
	}
	// Some cells homed on the dead member, so retries must have fired.
	if counter(c.Registry(), mRetries) == 0 {
		t.Fatal("no retries recorded although one backend was dead")
	}
}

func TestLocalFallbackWhenFleetEmpty(t *testing.T) {
	c := newTestCoordinator(t, nil, nil)
	ids := testCells(t)[:2]
	got, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("RunCells on an empty fleet: %v", err)
	}
	if mustEncode(t, got) != mustEncode(t, localResults(t, ids)) {
		t.Fatal("empty-fleet results are not byte-identical to the local run")
	}
	if counter(c.Registry(), mFallbacks+telemetry.Labels("reason", "no-backend")) == 0 {
		t.Fatal("no-backend fallback not counted")
	}
}

func TestLocalFallbackAfterExhaustedAttempts(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := newTestCoordinator(t, []string{deadURL}, func(o *Options) {
		o.MaxAttempts = 2
		o.BreakerThreshold = 100 // keep the breaker out of this test's way
	})
	ids := testCells(t)[:2]
	got, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("RunCells against a dead fleet: %v", err)
	}
	if mustEncode(t, got) != mustEncode(t, localResults(t, ids)) {
		t.Fatal("exhausted-fleet results are not byte-identical to the local run")
	}
	if counter(c.Registry(), mFallbacks+telemetry.Labels("reason", "exhausted")) == 0 {
		t.Fatal("exhausted fallback not counted")
	}
	if counter(c.Registry(), mRetries) == 0 {
		t.Fatal("no retries before giving up on the fleet")
	}
}

// flaky wraps a backend handler with a switchable 503 mode: down
// simulates an unhealthy-but-reachable member (failed /readyz probes
// and failed requests) that can recover.
type flaky struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "chaos: down", http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

func TestHealthEjectsAndReadmits(t *testing.T) {
	sA, _ := startBackend(t)
	fA := &flaky{h: sA.Handler()}
	tsA := httptest.NewServer(fA)
	t.Cleanup(tsA.Close)
	_, tsB := startBackend(t)

	c := newTestCoordinator(t, []string{tsA.URL, tsB.URL}, func(o *Options) {
		o.EjectAfter = 2
	})
	ids := testCells(t)
	want := mustEncode(t, localResults(t, ids))

	got, err := c.RunCells(context.Background(), ids)
	if err != nil || mustEncode(t, got) != want {
		t.Fatalf("healthy two-member fleet: err=%v identical=%v", err, mustEncode(t, got) == want)
	}
	if len(c.Healthy()) != 2 {
		t.Fatalf("Healthy() = %v, want both members", c.Healthy())
	}

	// A goes down: two failed probes eject it and its cells re-hash.
	fA.down.Store(true)
	c.ProbeNow()
	c.ProbeNow()
	if h := c.Healthy(); len(h) != 1 || h[0] != tsB.URL {
		t.Fatalf("Healthy() after eject = %v, want only %s", h, tsB.URL)
	}
	if counter(c.Registry(), mEjections) != 1 {
		t.Fatal("ejection not counted")
	}
	got, err = c.RunCells(context.Background(), ids)
	if err != nil || mustEncode(t, got) != want {
		t.Fatalf("post-eject fleet: err=%v identical=%v", err, mustEncode(t, got) == want)
	}

	// A recovers: one good probe readmits it, restoring the assignment.
	fA.down.Store(false)
	c.ProbeNow()
	if len(c.Healthy()) != 2 {
		t.Fatalf("Healthy() after recovery = %v, want both members", c.Healthy())
	}
	if counter(c.Registry(), mReadmits) != 1 {
		t.Fatal("readmission not counted")
	}
	got, err = c.RunCells(context.Background(), ids)
	if err != nil || mustEncode(t, got) != want {
		t.Fatalf("post-readmit fleet: err=%v identical=%v", err, mustEncode(t, got) == want)
	}
}

// delayed wraps a backend handler with a fixed per-request latency —
// the straggler a hedge is meant to beat.
type delayed struct {
	h http.Handler
	d time.Duration
}

func (d *delayed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	time.Sleep(d.d)
	d.h.ServeHTTP(w, r)
}

func TestHedgingBeatsStragglers(t *testing.T) {
	sSlow, _ := startBackend(t)
	tsSlow := httptest.NewServer(&delayed{h: sSlow.Handler(), d: 250 * time.Millisecond})
	t.Cleanup(tsSlow.Close)
	_, tsFast := startBackend(t)

	c := newTestCoordinator(t, []string{tsSlow.URL, tsFast.URL}, func(o *Options) {
		o.HedgeAfter = 25 * time.Millisecond
	})
	ids := testCells(t)
	got, err := c.RunCells(context.Background(), ids)
	if err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	if mustEncode(t, got) != mustEncode(t, localResults(t, ids)) {
		t.Fatal("hedged results are not byte-identical to the local run")
	}
	// Several cells homed on the slow member; their hedges launched
	// and (at 10x the latency gap) won.
	if counter(c.Registry(), mHedges) == 0 {
		t.Fatal("no hedges launched against a 250ms straggler")
	}
	if counter(c.Registry(), mHedgeWins) == 0 {
		t.Fatal("no hedge wins recorded against a 250ms straggler")
	}
}

func TestBreakerShieldsDeadBackend(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, tsOK := startBackend(t)

	c := newTestCoordinator(t, []string{deadURL, tsOK.URL}, func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerCooldown = time.Hour // stays open for the whole test
	})
	ids := testCells(t)
	if _, err := c.RunCells(context.Background(), ids); err != nil {
		t.Fatalf("RunCells: %v", err)
	}
	if counter(c.Registry(), mBreakerOpen) == 0 {
		t.Fatal("breaker never opened against a dead backend")
	}
	// With the breaker open, a fresh pass dispatches only to the live
	// member: no further retries needed.
	before := counter(c.Registry(), mRetries)
	extra := []serve.CellID{{Kernel: "vpr", Config: string(wsrs.ConfRR256), Seed: 7, Warmup: 1000, Measure: 5000}}
	if _, err := c.RunCells(context.Background(), extra); err != nil {
		t.Fatalf("post-open RunCells: %v", err)
	}
	if after := counter(c.Registry(), mRetries); after != before {
		t.Fatalf("open breaker did not shield the dead backend: retries %d -> %d", before, after)
	}
}

func TestRunCellCancellation(t *testing.T) {
	_, ts := startBackend(t)
	c := newTestCoordinator(t, []string{ts.URL}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := c.RunCell(ctx, serve.CellID{
		Kernel: "gzip", Config: string(wsrs.ConfRR256), Seed: 1,
		Warmup: 1000, Measure: 500_000_000, // minutes of work if not canceled
	})
	if err == nil {
		t.Fatal("canceled RunCell returned no error")
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v to propagate", d)
	}
}

func TestFetchPeerUsesCacheHome(t *testing.T) {
	var backends []string
	for i := 0; i < 2; i++ {
		_, ts := startBackend(t)
		backends = append(backends, ts.URL)
	}
	c := newTestCoordinator(t, backends, nil)
	id := testCells(t)[0]
	digest := id.Digest()

	if _, ok := c.FetchPeer(context.Background(), digest); ok {
		t.Fatal("peer fetch hit before anything ran")
	}
	if _, _, err := c.RunCell(context.Background(), id); err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	// The cell ran on its cache home, so the home's cache now holds it.
	res, ok := c.FetchPeer(context.Background(), digest)
	if !ok {
		t.Fatal("peer fetch missed after the home ran the cell")
	}
	want := localResults(t, []serve.CellID{id})[0]
	if mustEncode(t, res) != mustEncode(t, want) {
		t.Fatal("peer-fetched result differs from the local run")
	}
}
