package fleet

import (
	"context"
	"fmt"
	"sort"
	"time"

	"wsrs/internal/otrace"
	"wsrs/internal/otrace/federate"
	"wsrs/internal/serve"
)

// This file is the coordinator's observability surface: the
// serve.FleetObserver implementation behind /v1/fleet/metrics,
// /v1/fleet/status and stitched traces, plus the per-backend dispatch
// accounting wsrsload -fleet reports.

// FleetMembers lists every configured backend, up or down — the
// federation fan-out targets. Implements serve.FleetObserver.
func (c *Coordinator) FleetMembers() []string {
	return append([]string(nil), c.opts.Backends...)
}

// FleetTrace fetches one member's span document for a trace ID — the
// member-side half of trace stitching. Implements serve.FleetObserver.
func (c *Coordinator) FleetTrace(ctx context.Context, member, traceID string) (otrace.Document, error) {
	client, ok := c.clients[member]
	if !ok {
		return otrace.Document{}, fmt.Errorf("unknown fleet member %q", member)
	}
	return client.TraceByID(ctx, traceID)
}

// FleetMetrics fetches one member's raw Prometheus exposition for
// federation. Implements serve.FleetObserver.
func (c *Coordinator) FleetMetrics(ctx context.Context, member string) ([]byte, error) {
	client, ok := c.clients[member]
	if !ok {
		return nil, fmt.Errorf("unknown fleet member %q", member)
	}
	return client.RawMetrics(ctx)
}

// FleetHealth reports the prober's and breakers' view of every
// configured backend. Implements serve.FleetObserver.
func (c *Coordinator) FleetHealth() []federate.MemberHealth {
	out := make([]federate.MemberHealth, 0, len(c.opts.Backends))
	for _, b := range c.opts.Backends {
		out = append(out, federate.MemberHealth{
			Member:  b,
			Healthy: !c.health.isDown(b),
			Breaker: c.breakers[b].State(),
		})
	}
	return out
}

// backendStat is the mutable per-backend dispatch accounting (guarded
// by Coordinator.smu).
type backendStat struct {
	attempts  uint64
	failures  uint64
	hedgeWins uint64
	totalNs   int64
	maxNs     int64
}

// BackendStat is one backend's dispatch summary for reporting:
// attempts, failures, hedge wins, and attempt-latency aggregates.
type BackendStat struct {
	Backend   string  `json:"backend"`
	Attempts  uint64  `json:"attempts"`
	Failures  uint64  `json:"failures"`
	HedgeWins uint64  `json:"hedge_wins"`
	MeanMs    float64 `json:"mean_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// recordAttempt folds one dispatched leg's outcome into the backend's
// stats.
func (c *Coordinator) recordAttempt(backend string, d time.Duration, err error) {
	c.smu.Lock()
	defer c.smu.Unlock()
	st := c.bstats[backend]
	if st == nil {
		return
	}
	st.attempts++
	if err != nil {
		st.failures++
	}
	ns := d.Nanoseconds()
	st.totalNs += ns
	if ns > st.maxNs {
		st.maxNs = ns
	}
}

// recordHedgeWin credits a hedge leg that beat the original attempt.
func (c *Coordinator) recordHedgeWin(backend string) {
	c.smu.Lock()
	defer c.smu.Unlock()
	if st := c.bstats[backend]; st != nil {
		st.hedgeWins++
	}
}

// BackendStats returns the per-backend dispatch summary, sorted by
// backend — the table wsrsload -fleet prints after a run.
func (c *Coordinator) BackendStats() []BackendStat {
	c.smu.Lock()
	defer c.smu.Unlock()
	out := make([]BackendStat, 0, len(c.bstats))
	for b, st := range c.bstats {
		row := BackendStat{
			Backend:   b,
			Attempts:  st.attempts,
			Failures:  st.failures,
			HedgeWins: st.hedgeWins,
			MaxMs:     float64(st.maxNs) / 1e6,
		}
		if st.attempts > 0 {
			row.MeanMs = float64(st.totalNs) / float64(st.attempts) / 1e6
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// compile-time check: the coordinator satisfies the observability
// surface serve mounts behind /v1/fleet/*.
var _ serve.FleetObserver = (*Coordinator)(nil)
