package fleet

import "wsrs/internal/telemetry"

// Metric families of the fleet coordinator. They live on the same
// registry as the wsrsd job-API families when wsrsd runs in
// coordinator mode, so one /metrics scrape shows admission, cache and
// fleet behaviour together — the chaos smoke test asserts the retry
// counters here are non-zero after an injected failure.
const (
	mBackends           = "wsrsd_fleet_backends"
	helpBackends        = "backends configured at startup"
	mBackendsHealthy    = "wsrsd_fleet_backends_healthy"
	helpBackendsHealthy = "backends currently in the ring (configured minus ejected)"

	mCells     = "wsrsd_fleet_cells_total"
	helpCells  = "cells resolved by the coordinator, by outcome (remote, local, failed, canceled)"
	mCellMs    = "wsrsd_fleet_cell_ms"
	helpCellMs = "per-cell resolution wall time in milliseconds (including retries and hedges)"

	mAttempts     = "wsrsd_fleet_attempts_total"
	helpAttempts  = "single-cell jobs dispatched to backends (first tries, retries and hedges)"
	mRetries      = "wsrsd_fleet_retries_total"
	helpRetries   = "cells re-dispatched after a failed attempt (jittered exponential backoff)"
	mHedges       = "wsrsd_fleet_hedges_total"
	helpHedges    = "hedge requests launched against a straggling attempt"
	mHedgeWins    = "wsrsd_fleet_hedge_wins_total"
	helpHedgeWins = "cells whose hedge finished before the original attempt"

	mEjections      = "wsrsd_fleet_ejections_total"
	helpEjections   = "backends ejected from the ring after consecutive probe failures"
	mReadmits       = "wsrsd_fleet_readmissions_total"
	helpReadmits    = "ejected backends readmitted after a successful probe"
	mBreakerOpen    = "wsrsd_fleet_breaker_opens_total"
	helpBreakerOpen = "circuit-breaker open transitions (consecutive request failures)"

	mFallbacks    = "wsrsd_fleet_local_fallbacks_total"
	helpFallbacks = "cells executed locally, by reason (no-backend, exhausted)"

	mPeerFetch    = "wsrsd_fleet_peer_fetch_total"
	helpPeerFetch = "peer cache-home fetches, by outcome (hit, miss)"
)

// initMetrics registers every family up front so a scrape before the
// first cell already shows the full fleet surface at zero.
func (c *Coordinator) initMetrics() {
	c.reg.Gauge(mBackends, helpBackends).Set(int64(len(c.opts.Backends)))
	c.reg.Gauge(mBackendsHealthy, helpBackendsHealthy).Set(int64(c.ring.Len()))
	for _, outcome := range []string{"remote", "local", "failed", "canceled"} {
		c.reg.Counter(mCells+telemetry.Labels("outcome", outcome), helpCells)
	}
	c.reg.Histogram(mCellMs, helpCellMs)
	c.reg.Counter(mAttempts, helpAttempts)
	c.reg.Counter(mRetries, helpRetries)
	c.reg.Counter(mHedges, helpHedges)
	c.reg.Counter(mHedgeWins, helpHedgeWins)
	c.reg.Counter(mEjections, helpEjections)
	c.reg.Counter(mReadmits, helpReadmits)
	c.reg.Counter(mBreakerOpen, helpBreakerOpen)
	for _, reason := range []string{"no-backend", "exhausted"} {
		c.reg.Counter(mFallbacks+telemetry.Labels("reason", reason), helpFallbacks)
	}
	for _, outcome := range []string{"hit", "miss"} {
		c.reg.Counter(mPeerFetch+telemetry.Labels("outcome", outcome), helpPeerFetch)
	}
}
