package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startEcho(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"path": r.URL.Path, "answer": strings.Repeat("x", 64)})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func startProxy(t *testing.T, target string) (*Proxy, string) {
	t.Helper()
	p := NewProxy(target)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts.URL
}

func TestProxyTransparentByDefault(t *testing.T) {
	echo := startEcho(t)
	_, url := startProxy(t, echo.URL)
	resp, err := http.Get(url + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode through transparent proxy: %v", err)
	}
	if body["path"] != "/v1/ping" {
		t.Fatalf("proxied path = %q", body["path"])
	}
}

func TestProxyDropsEveryNth(t *testing.T) {
	echo := startEcho(t)
	p, url := startProxy(t, echo.URL)
	p.SetFaults(Faults{DropEvery: 2})
	var drops, oks int
	for i := 0; i < 6; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			drops++
			continue
		}
		resp.Body.Close()
		oks++
	}
	if drops != 3 || oks != 3 {
		t.Fatalf("drops=%d oks=%d, want 3/3", drops, oks)
	}
}

func TestProxyErrorsEveryNth(t *testing.T) {
	echo := startEcho(t)
	p, url := startProxy(t, echo.URL)
	p.SetFaults(Faults{ErrorEvery: 3})
	var errs int
	for i := 1; i <= 6; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode == http.StatusBadGateway {
			errs++
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if errs != 2 {
		t.Fatalf("502s = %d of 6 at ErrorEvery=3", errs)
	}
}

func TestProxyTruncationBreaksDecoding(t *testing.T) {
	echo := startEcho(t)
	p, url := startProxy(t, echo.URL)
	p.SetFaults(Faults{TruncateEvery: 1})
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatalf("truncated response refused the request itself: %v", err)
	}
	defer resp.Body.Close()
	var v map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
		t.Fatal("decoding a truncated body succeeded")
	}
}

func TestProxyKillAndRevive(t *testing.T) {
	echo := startEcho(t)
	p, url := startProxy(t, echo.URL)
	p.Kill()
	if _, err := http.Get(url + "/x"); err == nil {
		t.Fatal("killed proxy answered")
	}
	p.Revive()
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatalf("revived proxy still dead: %v", err)
	}
	resp.Body.Close()
}

func TestProxyLatency(t *testing.T) {
	echo := startEcho(t)
	p, url := startProxy(t, echo.URL)
	p.SetFaults(Faults{Latency: 80 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("request returned in %v, under the injected 80ms", d)
	}
}
