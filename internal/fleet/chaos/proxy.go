// Package chaos is the failure-injection harness the fleet's
// robustness claims are proved against: an HTTP proxy that sits in
// front of a real wsrsd backend and injects the failure modes a
// distributed fleet actually meets — added latency, connections
// dropped without a response, 5xx bursts, response bodies truncated
// mid-JSON, and a hard backend kill that resets every connection
// (probes included) until revived.
//
// The proxy is deliberately a library, not a binary: TestChaosMatrix
// wraps real backends with it in-process, and cmd/wsrsload's fleet
// bench uses it to measure scaling with one injected failure. Faults
// are counted per proxy-wide request, so "every Nth request fails"
// composes naturally with the coordinator's retries: a retried
// request advances the counter and (usually) gets through.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Faults selects what the proxy injects. The zero value is a
// transparent proxy. Modes are checked in the order latency, drop,
// error, truncate; the periodic modes share one request counter.
type Faults struct {
	// Latency is added before every request is forwarded.
	Latency time.Duration
	// DropEvery closes every Nth connection without writing any
	// response (the client sees a reset/EOF mid-request).
	DropEvery int
	// ErrorEvery answers every Nth request with 502 without
	// forwarding it.
	ErrorEvery int
	// TruncateEvery forwards every Nth request but writes only half
	// the response body under a full-length Content-Length header,
	// then closes the connection (the client sees an unexpected EOF
	// mid-JSON).
	TruncateEvery int
}

// Proxy is one chaos-wrapped backend. Serve it with net/http (it
// implements http.Handler); point the fleet coordinator at the
// proxy's address instead of the backend's.
type Proxy struct {
	target string
	client *http.Client

	mu     sync.Mutex
	faults Faults

	n      atomic.Uint64
	killed atomic.Bool
}

// NewProxy builds a transparent proxy for the backend at target (a
// base URL, e.g. "http://127.0.0.1:8080"). Inject failures with
// SetFaults and Kill.
func NewProxy(target string) *Proxy {
	return &Proxy{
		target: target,
		// A private transport: a killed proxy must not poison shared
		// connection pools, and chaos tests run many proxies at once.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
	}
}

// SetFaults replaces the injected fault set (atomic with respect to
// in-flight requests, which keep the set they started with).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the current fault set.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Kill simulates a hard backend death: every subsequent connection —
// jobs and health probes alike — is reset without a byte of response,
// until Revive.
func (p *Proxy) Kill() { p.killed.Store(true) }

// Revive undoes Kill.
func (p *Proxy) Revive() { p.killed.Store(false) }

// Killed reports whether the proxy is currently dead.
func (p *Proxy) Killed() bool { return p.killed.Load() }

// Requests reports the total requests seen (faulted or forwarded).
func (p *Proxy) Requests() uint64 { return p.n.Load() }

// nth reports whether request n trips an every-N fault.
func nth(every int, n uint64) bool {
	return every > 0 && n%uint64(every) == 0
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.n.Add(1)
	if p.killed.Load() {
		abortConn(w)
		return
	}
	f := p.Faults()
	if f.Latency > 0 {
		select {
		case <-time.After(f.Latency):
		case <-r.Context().Done():
			return
		}
	}
	if nth(f.DropEvery, n) {
		abortConn(w)
		return
	}
	if nth(f.ErrorEvery, n) {
		http.Error(w, "chaos: injected 502", http.StatusBadGateway)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("chaos proxy: %v", err), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("chaos proxy: backend: %v", err), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, fmt.Sprintf("chaos proxy: backend body: %v", err), http.StatusBadGateway)
		return
	}

	if nth(f.TruncateEvery, n) && len(body) > 1 {
		truncateResponse(w, resp, body)
		return
	}
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// copyHeader forwards end-to-end headers, skipping the hop-by-hop and
// framing ones the proxy re-derives.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Transfer-Encoding", "Content-Length", "Keep-Alive":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// abortConn resets the client's connection without a response — the
// wire signature of a crashed backend.
func abortConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	// No hijack support (e.g. HTTP/2): the closest approximation.
	w.WriteHeader(http.StatusBadGateway)
}

// truncateResponse writes the response status and headers with the
// full Content-Length, half the body, then closes the connection: the
// client's JSON decoder sees a well-formed prefix and an unexpected
// EOF.
func truncateResponse(w http.ResponseWriter, resp *http.Response, body []byte) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		abortConn(w)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	hdr := http.Header{}
	copyHeader(hdr, resp.Header)
	_ = hdr.Write(buf)
	fmt.Fprintf(buf, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	_, _ = buf.Write(body[:len(body)/2])
	_ = buf.Flush()
}
