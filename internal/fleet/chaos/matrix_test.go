package chaos_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"wsrs"
	"wsrs/internal/fleet"
	"wsrs/internal/fleet/chaos"
	"wsrs/internal/otrace/flight"
	"wsrs/internal/serve"
	"wsrs/internal/telemetry"
)

// matrixCells is the grid every chaos mode must reproduce exactly.
func matrixCells(measure uint64) []serve.CellID {
	var out []serve.CellID
	for _, k := range []string{"gzip", "mcf", "vpr"} {
		for _, cfg := range []string{string(wsrs.ConfRR256), string(wsrs.ConfWSRR384)} {
			for seed := int64(1); seed <= 2; seed++ {
				out = append(out, serve.CellID{
					Kernel: k, Config: cfg, Seed: seed, Warmup: 1000, Measure: measure,
				})
			}
		}
	}
	return out
}

// baseline runs the cells through a direct wsrs.RunGrid and encodes
// them — the bytes every chaos-disturbed fleet run must match.
func baseline(t *testing.T, ids []serve.CellID) string {
	t.Helper()
	out := make([]wsrs.Result, len(ids))
	for i, id := range ids {
		res, err := wsrs.RunGrid([]wsrs.GridCell{{
			Kernel: id.Kernel, Config: wsrs.ConfigName(id.Config), Seed: id.Seed,
		}}, wsrs.SimOpts{
			WarmupInsts: id.Warmup, MeasureInsts: id.Measure, Seed: id.Seed,
		}, 1)
		if err != nil {
			t.Fatalf("baseline cell %d: %v", i, err)
		}
		out[i] = res[0].Result
	}
	return encode(t, out)
}

func encode(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// chaosFleet boots n real wsrsd cores, each behind its own chaos
// proxy, and returns the proxies plus the proxy URLs the coordinator
// should target.
func chaosFleet(t *testing.T, n int) ([]*chaos.Proxy, []string) {
	t.Helper()
	proxies := make([]*chaos.Proxy, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := serve.New(serve.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		backend := httptest.NewServer(s.Handler())
		p := chaos.NewProxy(backend.URL)
		front := httptest.NewServer(p)
		t.Cleanup(func() {
			front.Close()
			backend.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		proxies[i], urls[i] = p, front.URL
	}
	return proxies, urls
}

// assertPostmortem is the black-box half of the chaos contract: every
// injected fault mode must leave at least one flight-recorder snapshot
// that names a cell digest from this run, and the artifact persisted to
// the postmortem dir must parse back into the same document — the
// postmortem is useful even when the run itself (byte-identity intact)
// never surfaced an error.
func assertPostmortem(t *testing.T, fr *flight.Recorder, ids []serve.CellID) {
	t.Helper()
	digests := make(map[string]bool, len(ids))
	for _, id := range ids {
		digests[id.Digest()] = true
	}
	snaps := fr.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("chaos run left no flight-recorder snapshot")
	}
	var named *flight.Snapshot
	var reasons []string
	for _, s := range snaps {
		reasons = append(reasons, s.Reason)
		if named == nil && digests[s.CellDigest] {
			named = s
		}
	}
	if named == nil {
		t.Fatalf("no snapshot names a cell digest from this run (reasons: %v)", reasons)
	}
	if named.Path == "" {
		t.Fatalf("%q snapshot was not persisted to the postmortem dir", named.Reason)
	}
	data, err := os.ReadFile(named.Path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed flight.Snapshot
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("postmortem artifact %s does not parse: %v", named.Path, err)
	}
	if parsed.Reason != named.Reason || parsed.CellDigest != named.CellDigest || parsed.Process != "coordinator" {
		t.Fatalf("parsed artifact (%s/%s/%s) disagrees with the live snapshot (%s/%s/coordinator)",
			parsed.Process, parsed.Reason, parsed.CellDigest, named.Reason, named.CellDigest)
	}
}

func counter(reg *telemetry.Registry, name string) uint64 {
	var total uint64
	for k, v := range reg.Snapshot() {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// TestChaosMatrix is the fleet's robustness contract: for every
// injected failure mode — added latency, dropped connections, 5xx
// bursts, truncated bodies, and a hard backend kill mid-job — the
// scatter/gather run still ends byte-identical to a local
// wsrs.RunGrid, and the coordinator's failure-path counters show the
// machinery (hedges, retries, ejection) actually fired.
func TestChaosMatrix(t *testing.T) {
	ids := matrixCells(5000)
	want := baseline(t, ids)

	modes := []struct {
		name   string
		faults chaos.Faults
		tune   func(*fleet.Options)
		fired  string // metric family that must be non-zero afterwards
	}{
		{
			name:   "latency",
			faults: chaos.Faults{Latency: 120 * time.Millisecond},
			tune:   func(o *fleet.Options) { o.HedgeAfter = 20 * time.Millisecond },
			fired:  "wsrsd_fleet_hedges_total",
		},
		{
			name:   "drop",
			faults: chaos.Faults{DropEvery: 4},
			fired:  "wsrsd_fleet_retries_total",
		},
		{
			name:   "5xx",
			faults: chaos.Faults{ErrorEvery: 4},
			fired:  "wsrsd_fleet_retries_total",
		},
		{
			name:   "truncate",
			faults: chaos.Faults{TruncateEvery: 4},
			fired:  "wsrsd_fleet_retries_total",
		},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			proxies, urls := chaosFleet(t, 3)
			o := fleet.Options{
				Backends:      urls,
				ProbeInterval: -1, // membership fixed: this mode tests the request path
				HedgeAfter:    -1,
				BaseBackoff:   time.Millisecond,
				MaxBackoff:    8 * time.Millisecond,
				MaxAttempts:   5,
				// A flaky-but-alive backend must not get benched: the
				// matrix is about the request path, the kill subtest
				// below is about membership.
				BreakerThreshold: 1000,
				Seed:             1,
			}
			if m.tune != nil {
				m.tune(&o)
			}
			fr := flight.New(flight.Options{Process: "coordinator", Dir: t.TempDir()})
			o.Flight = fr
			c := fleet.New(o)
			defer c.Close()
			for _, p := range proxies {
				p.SetFaults(m.faults)
			}

			got, err := c.RunCells(context.Background(), ids)
			if err != nil {
				t.Fatalf("RunCells under %s chaos: %v", m.name, err)
			}
			if encode(t, got) != want {
				t.Fatalf("results under %s chaos are not byte-identical to the local run", m.name)
			}
			if counter(c.Registry(), m.fired) == 0 {
				t.Fatalf("%s chaos did not exercise %s", m.name, m.fired)
			}
			assertPostmortem(t, fr, ids)
		})
	}

	// The kill mode: one backend dies mid-job with cells in flight;
	// the prober ejects it, its cells re-hash to the survivors, and
	// the gathered grid is still byte-identical.
	t.Run("kill", func(t *testing.T) {
		killIDs := matrixCells(400_000) // long enough that the kill lands mid-job
		killWant := baseline(t, killIDs)

		proxies, urls := chaosFleet(t, 3)
		fr := flight.New(flight.Options{Process: "coordinator", Dir: t.TempDir()})
		c := fleet.New(fleet.Options{
			Backends:      urls,
			ProbeInterval: 25 * time.Millisecond,
			ProbeTimeout:  200 * time.Millisecond,
			EjectAfter:    1,
			HedgeAfter:    -1,
			BaseBackoff:   time.Millisecond,
			MaxBackoff:    8 * time.Millisecond,
			MaxAttempts:   5,
			Flight:        fr,
			Seed:          1,
		})
		defer c.Close()

		done := make(chan struct{})
		var got []wsrs.Result
		var runErr error
		go func() {
			defer close(done)
			got, runErr = c.RunCells(context.Background(), killIDs)
		}()
		time.Sleep(60 * time.Millisecond)
		proxies[0].Kill()
		<-done
		if runErr != nil {
			t.Fatalf("RunCells across a mid-job kill: %v", runErr)
		}
		if encode(t, got) != killWant {
			t.Fatal("results across a mid-job kill are not byte-identical to the local run")
		}
		// The dead member must be out of the ring (probe it once more
		// in case the job outran the prober).
		c.ProbeNow()
		if counter(c.Registry(), "wsrsd_fleet_ejections_total") == 0 {
			t.Fatal("killed backend was never ejected")
		}
		if n := len(c.Healthy()); n != 2 {
			t.Fatalf("Healthy() = %d members after the kill, want 2", n)
		}
		// The black box must hold both halves of the incident: a snapshot
		// naming a failing cell (the in-flight attempts the kill broke)
		// and the membership transition that benched the dead member.
		assertPostmortem(t, fr, killIDs)
		ejectSnap := false
		for _, s := range fr.Snapshots() {
			if s.Reason == "backend-ejected" {
				ejectSnap = true
			}
		}
		if !ejectSnap {
			t.Fatal("ejection left no backend-ejected flight-recorder snapshot")
		}

		// Recovery: revive the backend; the prober readmits it and the
		// original assignment (and byte-identity) still holds.
		proxies[0].Revive()
		c.ProbeNow()
		if n := len(c.Healthy()); n != 3 {
			t.Fatalf("Healthy() = %d members after revival, want 3", n)
		}
		got, err := c.RunCells(context.Background(), killIDs)
		if err != nil {
			t.Fatalf("RunCells after revival: %v", err)
		}
		if encode(t, got) != killWant {
			t.Fatal("results after revival are not byte-identical to the local run")
		}
	})
}
