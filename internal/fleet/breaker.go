package fleet

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // requests flow; failures are counted
	BreakerOpen     = "open"      // requests refused until the cooldown expires
	BreakerHalfOpen = "half-open" // one probe request is in flight
)

// Breaker is a per-backend circuit breaker: a run of consecutive
// request failures opens it, Allow refuses traffic while open, and
// after the cooldown exactly one probe request is let through —
// success closes the breaker, failure re-opens it for another
// cooldown. It protects a struggling backend from the retry storm its
// own slowness would otherwise attract, and spares the coordinator
// from burning its per-cell attempt budget on a backend that is known
// to be down.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    string
	fails    int
	openedAt time.Time
}

// NewBreaker builds a closed breaker opening after threshold
// consecutive failures (<= 0 selects 3) and probing again after
// cooldown (<= 0 selects 2s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// Allow reports whether a request may be sent. While open it refuses
// until the cooldown expires, then admits exactly one probe (the
// half-open state); the probe's Success or Failure decides what
// happens next.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe slot is taken
		return false
	}
}

// Success records a completed request: the breaker closes and the
// failure run resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure records a failed request. It reports true when this failure
// opened the breaker (for the metrics and the log line).
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		return true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			return true
		}
	}
	return false
}

// State returns the current state name.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
