package fleet

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"wsrs/internal/otrace"
	flightrec "wsrs/internal/otrace/flight"
)

// transition is the membership change one probe observation caused.
type transition int

const (
	noChange transition = iota
	ejected
	readmitted
)

// healthTracker folds a stream of per-member probe outcomes into
// membership transitions: ejectAfter consecutive failures ejects a
// member, the first success after an ejection readmits it. It is the
// pure-state half of health-driven membership; the Coordinator applies
// the transitions to the ring.
type healthTracker struct {
	ejectAfter int

	mu    sync.Mutex
	fails map[string]int
	down  map[string]bool
}

func newHealthTracker(ejectAfter int) *healthTracker {
	if ejectAfter <= 0 {
		ejectAfter = 2
	}
	return &healthTracker{
		ejectAfter: ejectAfter,
		fails:      map[string]int{},
		down:       map[string]bool{},
	}
}

// observe records one probe outcome and returns the transition it
// caused.
func (h *healthTracker) observe(member string, ok bool) transition {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ok {
		h.fails[member] = 0
		if h.down[member] {
			h.down[member] = false
			return readmitted
		}
		return noChange
	}
	h.fails[member]++
	if !h.down[member] && h.fails[member] >= h.ejectAfter {
		h.down[member] = true
		return ejected
	}
	return noChange
}

// isDown reports whether the member is currently ejected.
func (h *healthTracker) isDown(member string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[member]
}

// probeLoop is the background prober: every ProbeInterval it probes
// each configured backend's /readyz and applies the resulting
// membership transitions, until Close stops it.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// ProbeNow probes every configured backend once, synchronously, and
// applies ejections and readmissions to the ring. The background
// prober calls it each tick; tests and the chaos harness call it
// directly so membership transitions happen at deterministic points.
func (c *Coordinator) ProbeNow() {
	for _, b := range c.opts.Backends {
		// Each probe gets its own span (and carries its context on the
		// request headers), so member-side access logs and stitched
		// traces show health traffic distinctly from cell traffic.
		psp := c.tracer.Begin("fleet.probe", otrace.Ctx{})
		psp.SetStr("backend", b)
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
		err := c.clients[b].Ready(otrace.ContextWith(ctx, psp.Ctx()))
		cancel()
		psp.SetBool("ok", err == nil)
		c.tracer.End(&psp)
		switch c.health.observe(b, err == nil) {
		case ejected:
			c.ring.Remove(b)
			c.reg.Counter(mEjections, helpEjections).Inc()
			c.log.LogAttrs(context.Background(), slog.LevelWarn, "backend ejected",
				slog.String("backend", b),
				slog.String("probe_error", err.Error()),
				slog.Int("healthy", c.ring.Len()))
			c.fr.Record(flightrec.Event{
				Kind: flightrec.KindProbe, Name: "ejected", Detail: b,
			})
			c.fr.Snapshot("backend-ejected", "", b+": "+err.Error())
		case readmitted:
			c.ring.Add(b)
			c.breakers[b].Success() // a fresh start: don't refuse the returnee
			c.reg.Counter(mReadmits, helpReadmits).Inc()
			c.log.LogAttrs(context.Background(), slog.LevelInfo, "backend readmitted",
				slog.String("backend", b),
				slog.Int("healthy", c.ring.Len()))
			c.fr.Record(flightrec.Event{
				Kind: flightrec.KindProbe, Name: "readmitted", Detail: b,
			})
		}
	}
	c.reg.Gauge(mBackendsHealthy, helpBackendsHealthy).Set(int64(c.ring.Len()))
}
