// Package metrics collects the evaluation-section statistics of the
// paper: IPC and the workload unbalancing degree of §5.4.2 ("we split
// the applications in groups of 128 instructions and measure the ratio
// of these groups that are unbalanced. We arbitrarily define a group
// as unbalanced whenever one of the four clusters gets less than 24
// instructions or more than 40 instructions.").
package metrics

// UnbalancingConfig parameterizes the §5.4.2 metric.
type UnbalancingConfig struct {
	GroupSize int // instructions per group (paper: 128)
	Low       int // unbalanced when any cluster gets fewer (paper: 24)
	High      int // unbalanced when any cluster gets more (paper: 40)
	Clusters  int
}

// DefaultUnbalancing returns the paper's parameters for 4 clusters.
func DefaultUnbalancing() UnbalancingConfig {
	return UnbalancingConfig{GroupSize: 128, Low: 24, High: 40, Clusters: 4}
}

// ClusterLoad tracks the per-cluster distribution of committed
// instructions and computes the unbalancing degree.
type ClusterLoad struct {
	cfg     UnbalancingConfig
	current []int
	inGroup int

	Groups          uint64
	Unbalanced      uint64
	TotalPerCluster []uint64
}

// NewClusterLoad returns a tracker.
func NewClusterLoad(cfg UnbalancingConfig) *ClusterLoad {
	return &ClusterLoad{
		cfg:             cfg,
		current:         make([]int, cfg.Clusters),
		TotalPerCluster: make([]uint64, cfg.Clusters),
	}
}

// Config returns the tracker's parameters (engine reuse compares it
// before deciding between Reset and reconstruction).
func (u *ClusterLoad) Config() UnbalancingConfig { return u.cfg }

// Commit records one committed instruction executed on cluster c (for
// cracked instructions, the cluster of the final micro-op).
func (u *ClusterLoad) Commit(c int) {
	u.current[c]++
	u.TotalPerCluster[c]++
	u.inGroup++
	if u.inGroup >= u.cfg.GroupSize {
		u.closeGroup()
	}
}

func (u *ClusterLoad) closeGroup() {
	u.Groups++
	for _, n := range u.current {
		if n < u.cfg.Low || n > u.cfg.High {
			u.Unbalanced++
			break
		}
	}
	for i := range u.current {
		u.current[i] = 0
	}
	u.inGroup = 0
}

// Degree returns the unbalancing degree in percent: the ratio of
// unbalanced 128-instruction groups.
func (u *ClusterLoad) Degree() float64 {
	if u.Groups == 0 {
		return 0
	}
	return 100 * float64(u.Unbalanced) / float64(u.Groups)
}

// Reset clears all accumulated state (used at the warmup boundary).
func (u *ClusterLoad) Reset() {
	for i := range u.current {
		u.current[i] = 0
		u.TotalPerCluster[i] = 0
	}
	u.inGroup = 0
	u.Groups = 0
	u.Unbalanced = 0
}

// Spread returns max/min of the total per-cluster instruction counts,
// a coarse whole-run balance indicator (1.0 = perfectly balanced).
func (u *ClusterLoad) Spread() float64 {
	min, max := ^uint64(0), uint64(0)
	for _, n := range u.TotalPerCluster {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}
