package metrics

import (
	"math/rand"
	"testing"
)

func TestPerfectBalanceIsZero(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	// Round-robin: exactly 32 per cluster per 128-group.
	for i := 0; i < 128*100; i++ {
		u.Commit(i % 4)
	}
	if u.Groups != 100 {
		t.Fatalf("groups = %d, want 100", u.Groups)
	}
	if u.Degree() != 0 {
		t.Errorf("round-robin degree = %.1f, want 0 (paper: RR exhibits perfect balancing)", u.Degree())
	}
}

func TestFullySkewedIs100(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	for i := 0; i < 128*10; i++ {
		u.Commit(0)
	}
	if u.Degree() != 100 {
		t.Errorf("single-cluster degree = %.1f, want 100", u.Degree())
	}
}

func TestThresholds(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	// 24/40/32/32 sums to 128 and is balanced (bounds inclusive).
	emit := func(counts [4]int) {
		for c, n := range counts {
			for i := 0; i < n; i++ {
				u.Commit(c)
			}
		}
	}
	emit([4]int{24, 40, 32, 32})
	if u.Groups != 1 || u.Unbalanced != 0 {
		t.Errorf("24/40 group must be balanced: %d/%d", u.Unbalanced, u.Groups)
	}
	// 23 on one cluster -> unbalanced.
	emit([4]int{23, 41, 32, 32})
	if u.Unbalanced != 1 {
		t.Errorf("23-instruction cluster must be unbalanced")
	}
	// 41 on one cluster -> unbalanced even if none is below 24.
	emit([4]int{41, 29, 29, 29})
	if u.Unbalanced != 2 {
		t.Errorf("41-instruction cluster must be unbalanced")
	}
}

func TestPartialGroupNotCounted(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	for i := 0; i < 100; i++ {
		u.Commit(0)
	}
	if u.Groups != 0 {
		t.Error("incomplete group must not be scored")
	}
}

func TestRandomUniformMostlyBalanced(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 128*2000; i++ {
		u.Commit(rng.Intn(4))
	}
	// Uniform random placement: per-group counts ~ Binomial(128, 1/4)
	// (mean 32, sd ~4.9); |count-32|>8 per cluster is uncommon but
	// not rare — the degree should land well inside (5, 60) %.
	d := u.Degree()
	if d < 5 || d > 60 {
		t.Errorf("uniform random degree = %.1f%%, expected 5-60%%", d)
	}
}

func TestPartialTrailingGroupDegree(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	// One complete, fully-skewed group followed by a balanced partial
	// tail: the tail must not dilute (or join) the score.
	for i := 0; i < 128; i++ {
		u.Commit(0)
	}
	for i := 0; i < 60; i++ {
		u.Commit(i % 4)
	}
	if u.Groups != 1 {
		t.Fatalf("groups = %d, want 1 (trailing partial group must not close)", u.Groups)
	}
	if u.Degree() != 100 {
		t.Errorf("degree = %.1f, want 100: only the complete group is scored", u.Degree())
	}
	if u.TotalPerCluster[0] != 128+15 {
		t.Errorf("TotalPerCluster[0] = %d, want %d (totals do include the tail)",
			u.TotalPerCluster[0], 128+15)
	}
}

func TestResetRestoresFreshTracker(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	// Dirty every piece of state, including a half-open group.
	for i := 0; i < 128*3+50; i++ {
		u.Commit(0)
	}
	u.Reset()
	if u.Groups != 0 || u.Unbalanced != 0 || u.Degree() != 0 {
		t.Errorf("reset left scores: groups=%d unbalanced=%d", u.Groups, u.Unbalanced)
	}
	for c, n := range u.TotalPerCluster {
		if n != 0 {
			t.Errorf("reset left TotalPerCluster[%d] = %d", c, n)
		}
	}
	// A reset tracker must behave exactly like a fresh one: the 50
	// in-group instructions from before the reset must not leak into
	// the first post-reset group.
	fresh := NewClusterLoad(DefaultUnbalancing())
	for i := 0; i < 128*2; i++ {
		u.Commit(i % 4)
		fresh.Commit(i % 4)
	}
	if u.Groups != fresh.Groups || u.Unbalanced != fresh.Unbalanced {
		t.Errorf("reset tracker diverged from fresh: %d/%d vs %d/%d",
			u.Unbalanced, u.Groups, fresh.Unbalanced, fresh.Groups)
	}
	for c := range u.TotalPerCluster {
		if u.TotalPerCluster[c] != fresh.TotalPerCluster[c] {
			t.Errorf("cluster %d totals diverged: %d vs %d",
				c, u.TotalPerCluster[c], fresh.TotalPerCluster[c])
		}
	}
}

func TestSpreadDegenerate(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	// No commits at all: every cluster is at zero, spread is defined
	// as 0 (not NaN/Inf from 0/0).
	if got := u.Spread(); got != 0 {
		t.Errorf("empty-tracker spread = %v, want 0", got)
	}
	// Any cluster still at zero keeps the degenerate value even when
	// others have committed (max/0 must not overflow to +Inf).
	u.Commit(1)
	if got := u.Spread(); got != 0 {
		t.Errorf("zero-commit-cluster spread = %v, want 0", got)
	}
}

func TestResetAndSpread(t *testing.T) {
	u := NewClusterLoad(DefaultUnbalancing())
	for i := 0; i < 128*4; i++ {
		u.Commit(0)
	}
	if u.Spread() != 0 {
		t.Error("spread with idle clusters must be 0")
	}
	u.Reset()
	if u.Groups != 0 || u.Degree() != 0 {
		t.Error("reset must clear state")
	}
	for i := 0; i < 128; i++ {
		u.Commit(i % 4)
	}
	if got := u.Spread(); got != 1 {
		t.Errorf("spread = %v, want 1", got)
	}
}
