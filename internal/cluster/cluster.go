// Package cluster models the execution resources of one cluster of the
// simulated processor (paper §4, §5.2): a 2-issue cluster with two
// integer ALUs, one load/store unit and one fully pipelined FPU —
// the EV6-like cluster the paper builds its 8-way 4-cluster machines
// from. Long-latency non-pipelined units (integer divide, fp
// divide/sqrt) block their unit until done; the cluster can write at
// most three register results per cycle (the 3 write ports of the
// specialized register subsets).
//
// The package provides a pure resource scoreboard; wakeup/select and
// the issue queue live in internal/pipeline.
package cluster

import "wsrs/internal/isa"

// Config describes one cluster's resources.
type Config struct {
	IssueWidth int // micro-ops selected per cycle (paper: 2)
	NumALU     int // integer ALUs, also execute branches (paper: 2)
	NumLSU     int // load/store units (paper: 1)
	NumFPU     int // floating-point units (paper: 1)
	// IQSize is the per-cluster scheduler capacity. The paper's
	// clusters "accept up to 56 in-flight instructions" with no
	// separate smaller scheduler, so the default equals MaxInflight
	// (an RUU-style window).
	IQSize      int
	MaxInflight int // in-flight micro-ops per cluster (paper: 56)
	// WritePorts is the per-cycle register writeback limit; with
	// register write specialization each subset has 3 write ports
	// (2 ALU results + 1 load result, as on the EV6).
	WritePorts int
}

// DefaultConfig returns the paper's cluster design point.
func DefaultConfig() Config {
	return Config{
		IssueWidth:  2,
		NumALU:      2,
		NumLSU:      1,
		NumFPU:      1,
		IQSize:      56,
		MaxInflight: 56,
		WritePorts:  3,
	}
}

// window is the scheduling horizon of the scoreboard's ring buffers.
// It must exceed the longest latency plus any queueing slack.
const window = 256

// Scoreboard tracks per-cycle resource usage of one cluster. Cycles
// only move forward; querying a cycle lower than an already-issued one
// is allowed (counts are kept per absolute cycle modulo the window).
type Scoreboard struct {
	cfg Config

	stamp [window]int64
	issue [window]int8
	alu   [window]int8
	lsu   [window]int8
	fpu   [window]int8

	wbStamp [window]int64
	wb      [window]int8

	divBusyUntil   int64
	fpdivBusyUntil int64
}

// NewScoreboard returns an empty scoreboard.
func NewScoreboard(cfg Config) *Scoreboard {
	s := &Scoreboard{}
	s.Reset(cfg)
	return s
}

// Reset restores the freshly constructed state for cfg. The counter
// rings are invalidated via the cycle stamps, so nothing but the two
// stamp arrays needs clearing.
func (s *Scoreboard) Reset(cfg Config) {
	s.cfg = cfg
	for i := range s.stamp {
		s.stamp[i] = -1
		s.wbStamp[i] = -1
	}
	s.divBusyUntil = 0
	s.fpdivBusyUntil = 0
}

// Config returns the cluster configuration.
func (s *Scoreboard) Config() Config { return s.cfg }

func (s *Scoreboard) slot(cycle int64) int {
	i := int(cycle % window)
	if s.stamp[i] != cycle {
		s.stamp[i] = cycle
		s.issue[i], s.alu[i], s.lsu[i], s.fpu[i] = 0, 0, 0, 0
	}
	return i
}

// CanIssue reports whether a micro-op of the given class can be
// selected at cycle.
func (s *Scoreboard) CanIssue(cycle int64, class isa.Class) bool {
	i := s.slot(cycle)
	if int(s.issue[i]) >= s.cfg.IssueWidth {
		return false
	}
	switch class {
	case isa.ClassALU, isa.ClassMul:
		return int(s.alu[i]) < s.cfg.NumALU
	case isa.ClassDiv:
		// The divider is fed through an ALU port and is non-pipelined.
		return int(s.alu[i]) < s.cfg.NumALU && cycle >= s.divBusyUntil
	case isa.ClassLoad, isa.ClassStore:
		return int(s.lsu[i]) < s.cfg.NumLSU
	case isa.ClassFP:
		return int(s.fpu[i]) < s.cfg.NumFPU && cycle >= s.fpdivBusyUntil
	case isa.ClassFPDiv:
		return int(s.fpu[i]) < s.cfg.NumFPU && cycle >= s.fpdivBusyUntil
	case isa.ClassNop:
		return true
	}
	return false
}

// Issue commits the resources for a micro-op of the given class with
// the given execution latency. Callers must have checked CanIssue.
func (s *Scoreboard) Issue(cycle int64, class isa.Class, latency int) {
	i := s.slot(cycle)
	s.issue[i]++
	switch class {
	case isa.ClassALU, isa.ClassMul:
		s.alu[i]++
	case isa.ClassDiv:
		s.alu[i]++
		s.divBusyUntil = cycle + int64(latency)
	case isa.ClassLoad, isa.ClassStore:
		s.lsu[i]++
	case isa.ClassFP:
		s.fpu[i]++
	case isa.ClassFPDiv:
		s.fpu[i]++
		s.fpdivBusyUntil = cycle + int64(latency)
	}
}

// ReserveWriteback finds the first cycle >= want with a free register
// write port, reserves it, and returns it. Results that arrive when
// all WritePorts are taken are delayed (the structural hazard created
// by the 3-write-port register subsets).
func (s *Scoreboard) ReserveWriteback(want int64) int64 {
	for c := want; ; c++ {
		i := int(c % window)
		if s.wbStamp[i] != c {
			s.wbStamp[i] = c
			s.wb[i] = 0
		}
		if int(s.wb[i]) < s.cfg.WritePorts {
			s.wb[i]++
			return c
		}
	}
}

// CanExecute reports whether a cluster with this configuration can
// ever execute micro-ops of the given class (used to validate
// heterogeneous pool organizations, paper Figure 2b).
func (c Config) CanExecute(class isa.Class) bool {
	switch class {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		return c.NumALU > 0
	case isa.ClassLoad, isa.ClassStore:
		return c.NumLSU > 0
	case isa.ClassFP, isa.ClassFPDiv:
		return c.NumFPU > 0
	case isa.ClassNop:
		return true
	}
	return false
}
