package cluster

import (
	"testing"

	"wsrs/internal/isa"
)

func TestIssueWidthLimit(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	if !s.CanIssue(10, isa.ClassALU) {
		t.Fatal("empty cycle must accept")
	}
	s.Issue(10, isa.ClassALU, 1)
	s.Issue(10, isa.ClassALU, 1)
	if s.CanIssue(10, isa.ClassLoad) {
		t.Error("issue width 2 must block a third op in the same cycle")
	}
	if !s.CanIssue(11, isa.ClassLoad) {
		t.Error("next cycle must be free")
	}
}

func TestALULimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 4 // isolate the ALU constraint
	s := NewScoreboard(cfg)
	s.Issue(5, isa.ClassALU, 1)
	s.Issue(5, isa.ClassALU, 1)
	if s.CanIssue(5, isa.ClassALU) {
		t.Error("2 ALUs must block a third ALU op")
	}
	if !s.CanIssue(5, isa.ClassLoad) {
		t.Error("LSU must still be free")
	}
}

func TestLSULimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 4
	s := NewScoreboard(cfg)
	s.Issue(5, isa.ClassLoad, 2)
	if s.CanIssue(5, isa.ClassStore) {
		t.Error("single LSU must block a second memory op per cycle")
	}
	if !s.CanIssue(6, isa.ClassStore) {
		t.Error("LSU free next cycle")
	}
}

func TestDivNonPipelined(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	s.Issue(0, isa.ClassDiv, 15)
	for c := int64(1); c < 15; c++ {
		if s.CanIssue(c, isa.ClassDiv) {
			t.Fatalf("divider must be busy at cycle %d", c)
		}
		if !s.CanIssue(c, isa.ClassALU) {
			t.Fatalf("ALUs must stay available during divide at cycle %d", c)
		}
	}
	if !s.CanIssue(15, isa.ClassDiv) {
		t.Error("divider must be free at cycle 15")
	}
}

func TestFPDivBlocksFPU(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	s.Issue(0, isa.ClassFPDiv, 15)
	if s.CanIssue(5, isa.ClassFP) {
		t.Error("non-pipelined fp divide must block the FPU")
	}
	if !s.CanIssue(15, isa.ClassFP) {
		t.Error("FPU free after divide")
	}
}

func TestFPPipelined(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	for c := int64(0); c < 5; c++ {
		if !s.CanIssue(c, isa.ClassFP) {
			t.Fatalf("pipelined FPU must accept one op every cycle (cycle %d)", c)
		}
		s.Issue(c, isa.ClassFP, 4)
	}
}

func TestMulPipelined(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	s.Issue(0, isa.ClassMul, 15)
	if !s.CanIssue(1, isa.ClassMul) {
		t.Error("pipelined multiplier must accept back-to-back multiplies")
	}
}

func TestWritebackPorts(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	// 3 write ports: the 4th result slated for cycle 20 slips to 21.
	for i := 0; i < 3; i++ {
		if got := s.ReserveWriteback(20); got != 20 {
			t.Fatalf("writeback %d at %d, want 20", i, got)
		}
	}
	if got := s.ReserveWriteback(20); got != 21 {
		t.Errorf("4th writeback at %d, want 21", got)
	}
	if got := s.ReserveWriteback(21); got != 21 {
		t.Errorf("5th writeback at %d, want 21 (one port left)", got)
	}
}

func TestScoreboardLongRun(t *testing.T) {
	// The ring buffers must stay correct far past the window size.
	s := NewScoreboard(DefaultConfig())
	for c := int64(0); c < 5*window; c += 3 {
		if !s.CanIssue(c, isa.ClassALU) {
			t.Fatalf("cycle %d unexpectedly full", c)
		}
		s.Issue(c, isa.ClassALU, 1)
		s.Issue(c, isa.ClassALU, 1)
		if s.CanIssue(c, isa.ClassALU) {
			t.Fatalf("cycle %d must be ALU-full", c)
		}
	}
}

func TestNopClassAlwaysIssuable(t *testing.T) {
	s := NewScoreboard(DefaultConfig())
	if !s.CanIssue(0, isa.ClassNop) {
		t.Error("nop class needs no resources")
	}
}

func TestCanExecute(t *testing.T) {
	full := DefaultConfig()
	for _, c := range []isa.Class{isa.ClassALU, isa.ClassMul, isa.ClassDiv,
		isa.ClassLoad, isa.ClassStore, isa.ClassFP, isa.ClassFPDiv, isa.ClassNop} {
		if !full.CanExecute(c) {
			t.Errorf("default cluster must execute %v", c)
		}
	}
	lsuOnly := Config{NumLSU: 2, IssueWidth: 2, IQSize: 8, MaxInflight: 16, WritePorts: 2}
	if lsuOnly.CanExecute(isa.ClassALU) || !lsuOnly.CanExecute(isa.ClassLoad) {
		t.Error("LSU-only pool classification wrong")
	}
	if !lsuOnly.CanExecute(isa.ClassNop) {
		t.Error("nops execute anywhere")
	}
}
