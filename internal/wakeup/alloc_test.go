package wakeup

import "testing"

// The broadcast pricing runs once per produced result in the metered
// hot loop; it must never touch the heap.
func TestAllocFreeBroadcast(t *testing.T) {
	var sink float64
	if avg := testing.AllocsPerRun(1000, func() {
		sink += BroadcastEnergyNJ(56) + DelayRel(6, 56)
	}); avg != 0 {
		t.Errorf("broadcast pricing: %.1f allocs/op, want 0", avg)
	}
	benchSink = sink
}
