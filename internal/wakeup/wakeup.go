// Package wakeup models the complexity of the wake-up logic (paper
// §4.3.2): the CAM-style comparators that watch result buses to mark
// waiting operands ready.
//
// For an instruction with two register operands and N possible result
// sources per operand, each wake-up entry implements 2N comparators;
// the total comparator count scales with the scheduler window. The
// response-time model is calibrated to the observation the paper
// quotes from Palacharla, Jouppi & Smith ("Complexity-effective
// superscalar processors"): doubling the possible sources per operand
// from 4 to 8 increases the wake-up logic response time by 46 % in a
// 0.18 µm technology. The tag-drive component additionally grows with
// the window size the tags must be broadcast across.
//
// The punchline the model quantifies: an 8-way 4-cluster WSRS machine
// (6 sources per operand: two visible clusters x three results) pays
// the wake-up latency and energy of a conventional 4-way machine, not
// of a conventional 8-way one (12 sources).
package wakeup

import "fmt"

// ComparatorsPerEntry returns the comparators in one wake-up entry for
// a dyadic instruction with the given number of possible sources per
// operand (§4.3.2: "each wake-up logic entry implements 2*N
// comparators").
func ComparatorsPerEntry(sourcesPerOperand int) int {
	return 2 * sourcesPerOperand
}

// TotalComparators returns the comparators across a scheduler window.
func TotalComparators(sourcesPerOperand, windowEntries int) int {
	return ComparatorsPerEntry(sourcesPerOperand) * windowEntries
}

// Calibration: delay = (a + b*sources) * (1 + w*(entries-refEntries)/refEntries)
// with delay(4 sources, refEntries) = 1 and delay(8)/delay(4) = 1.46
// (Palacharla et al., quoted in §4.3.2). The window term models tag
// broadcast across the entries; w = 0.3 adds 30 % when the window
// grows from 16 to 56 entries, consistent with the quadratic-in-window
// trends of the same study at these sizes.
const (
	refEntries = 16
	wWindow    = 0.3 * refEntries / (56.0 - refEntries)
)

var (
	// a + 4b = 1, a + 8b = 1.46 -> b = 0.115, a = 0.54.
	coefA = 0.54
	coefB = 0.115
)

// DelayRel returns the wake-up response time relative to a 4-source,
// 16-entry scheduler (= 1.0).
func DelayRel(sourcesPerOperand, windowEntries int) float64 {
	base := coefA + coefB*float64(sourcesPerOperand)
	window := 1 + wWindow*float64(windowEntries-refEntries)/float64(refEntries)
	return base * window
}

// EnergyRel returns the wake-up energy per cycle relative to the same
// reference: comparator count dominates (each broadcast drives every
// comparator in the window).
func EnergyRel(sourcesPerOperand, windowEntries int) float64 {
	return float64(TotalComparators(sourcesPerOperand, windowEntries)) /
		float64(TotalComparators(4, refEntries))
}

// eComparatorNJ is the energy of driving one CAM comparator with one
// broadcast tag: ~20 fJ at 0.09 µm, sized so a 56-entry window costs
// about 1 pJ per monitored broadcast side — the same order as one
// register-file port access of Table 1, matching the paper's framing
// of wake-up as a first-class energy consumer.
const eComparatorNJ = 2.0e-5

// BroadcastEnergyNJ returns the energy of one tag broadcast reaching
// one operand side of one scheduler window: the tag is compared
// against that side's comparator in every window entry. The dynamic
// energy telemetry charges this per monitored-broadcast event, so a
// machine whose broadcasts reach half the operand sides (WSRS) pays
// half the wake-up energy at equal result throughput.
func BroadcastEnergyNJ(windowEntries int) float64 {
	return eComparatorNJ * float64(windowEntries)
}

// Design summarizes one machine's wake-up design point.
type Design struct {
	Name              string
	SourcesPerOperand int // result buses visible to one operand
	WindowEntries     int // scheduler entries monitored
}

// Row reports the §4.3.2 comparison quantities for a design.
type Row struct {
	Design      Design
	Comparators int     // per entry
	Total       int     // across the window
	Delay       float64 // relative response time
	Energy      float64 // relative energy/cycle
}

// Evaluate computes the comparison row for a design.
func Evaluate(d Design) Row {
	return Row{
		Design:      d,
		Comparators: ComparatorsPerEntry(d.SourcesPerOperand),
		Total:       TotalComparators(d.SourcesPerOperand, d.WindowEntries),
		Delay:       DelayRel(d.SourcesPerOperand, d.WindowEntries),
		Energy:      EnergyRel(d.SourcesPerOperand, d.WindowEntries),
	}
}

// PaperDesigns returns the §4.3.2 comparison set: the conventional
// 8-way 4-cluster machine (12 sources per operand, 56-entry cluster
// schedulers), the 8-way 4-cluster WSRS machine (6 sources) and the
// conventional 4-way 2-cluster machine (6 sources).
func PaperDesigns() []Design {
	return []Design{
		{Name: "conventional 8-way", SourcesPerOperand: 12, WindowEntries: 56},
		{Name: "WSRS 8-way", SourcesPerOperand: 6, WindowEntries: 56},
		{Name: "conventional 4-way", SourcesPerOperand: 6, WindowEntries: 56},
	}
}

// String renders a row.
func (r Row) String() string {
	return fmt.Sprintf("%-20s %2d cmp/entry, %4d total, delay %.2fx, energy %.2fx",
		r.Design.Name, r.Comparators, r.Total, r.Delay, r.Energy)
}
