package wakeup

import "testing"

var benchSink float64

// BenchmarkCoreWakeupBroadcast measures pricing one tag broadcast
// against a 56-entry window plus the relative-delay evaluation — the
// per-event cost behind the telemetry energy stack's wake-up row.
func BenchmarkCoreWakeupBroadcast(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += BroadcastEnergyNJ(56) + DelayRel(6, 56)
	}
	benchSink = sink
}
