package wakeup

import (
	"math"
	"testing"
)

func TestComparatorCounts(t *testing.T) {
	// §4.3.2: 2N comparators per dyadic wake-up entry.
	if ComparatorsPerEntry(12) != 24 || ComparatorsPerEntry(6) != 12 {
		t.Error("comparator counts wrong")
	}
	if TotalComparators(6, 56) != 12*56 {
		t.Error("total comparators wrong")
	}
}

func TestPalacharlaCalibration(t *testing.T) {
	// Doubling sources 4 -> 8 must increase response time by 46 %
	// (the paper's quoted number), independent of window size.
	for _, entries := range []int{16, 32, 56} {
		ratio := DelayRel(8, entries) / DelayRel(4, entries)
		if math.Abs(ratio-1.46) > 0.01 {
			t.Errorf("delay(8)/delay(4) = %.3f at %d entries, want 1.46", ratio, entries)
		}
	}
	if math.Abs(DelayRel(4, 16)-1.0) > 1e-9 {
		t.Errorf("reference delay = %v, want 1", DelayRel(4, 16))
	}
}

func TestDelayMonotone(t *testing.T) {
	if DelayRel(12, 56) <= DelayRel(6, 56) {
		t.Error("more sources must be slower")
	}
	if DelayRel(6, 56) <= DelayRel(6, 16) {
		t.Error("bigger windows must be slower")
	}
}

func TestWSRSHeadline(t *testing.T) {
	// The central §4.3.2 claim: the 8-way WSRS wake-up entry equals
	// the conventional 4-way machine's.
	rows := make(map[string]Row)
	for _, d := range PaperDesigns() {
		rows[d.Name] = Evaluate(d)
	}
	wsrs := rows["WSRS 8-way"]
	conv4 := rows["conventional 4-way"]
	conv8 := rows["conventional 8-way"]
	if wsrs.Comparators != conv4.Comparators || wsrs.Delay != conv4.Delay || wsrs.Energy != conv4.Energy {
		t.Errorf("WSRS wake-up complexity must equal the 4-way machine's: %+v vs %+v", wsrs, conv4)
	}
	if conv8.Comparators != 2*wsrs.Comparators {
		t.Errorf("conventional 8-way must have twice the comparators: %d vs %d",
			conv8.Comparators, wsrs.Comparators)
	}
	if conv8.Delay <= wsrs.Delay {
		t.Error("conventional 8-way wake-up must be slower")
	}
	if wsrs.String() == "" || conv8.String() == "" {
		t.Error("row rendering broken")
	}
}

func TestEnergyScalesWithComparators(t *testing.T) {
	if EnergyRel(12, 56) != 2*EnergyRel(6, 56) {
		t.Error("energy must scale with comparator count")
	}
}
