package kernels

import "wsrs/internal/funcsim"

// applu proxy: lower-upper SSOR solver. Serially dependent
// multiply-subtract chains per point (back-substitution) with a
// pivot divide every fourth iteration — the non-pipelined FP divide
// throttles the machine exactly as applu's pivoting does. The 64 KB
// working set sits between L1 and L2.
const (
	appluData = 0x10_0000 // 8 Ki doubles = 64 KB
	appluLen  = 8 * 1024
)

func init() {
	register(Kernel{
		Name:        "applu",
		Class:       FP,
		Description: "SSOR back-substitution with pivot divides (SPECfp applu proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, appluData, appluLen, 909)
			// Keep pivots away from zero.
			for i := 0; i < appluLen; i++ {
				v := m.ReadFloat64(appluData + uint64(8*i))
				m.WriteFloat64(appluData+uint64(8*i), v+0.5)
			}
			m.WriteFloat64(0x9000, 0.9)
			m.WriteFloat64(0x9008, 1.1)
		},
		Source: `
	; %l0 data pointer  %g4 scan end  %g5 divide-gate mask
	li   %g4, 0x10fff0
	li   %g5, 3
	li   %g6, 0x9000
	fld  %f26, [%g6+0]
	fld  %f27, [%g6+8]
	li   %l0, 0x100000
	li   %l4, 0           ; iteration counter
	fmov %f20, %f27       ; running solution value
outer:
	fld  %f0, [%l0+0]     ; a[k]
	; dependent chain: x = (x - a*c1) * c2 + a
	fmul %f1, %f0, %f26
	fsub %f2, %f20, %f1
	fmul %f3, %f2, %f27
	fadd %f20, %f3, %f0
	; pivot divide every 4th iteration
	and  %o0, %l4, %g5
	bne  %o0, %g0, nodiv
	fdiv %f20, %f20, %f0  ; non-pipelined 15-cycle divide
nodiv:
	fst  %f20, [%l0+0]
	add  %l0, %l0, 8
	add  %l4, %l4, 1
	blt  %l0, %g4, outer
	li   %l0, 0x100000
	ba   outer
`,
	})
}
