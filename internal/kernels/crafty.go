package kernels

import "wsrs/internal/funcsim"

// crafty proxy: bitboard move generation. Chess engines live on
// 64-bit logical operations — shifts, masks, population counts — over
// a tiny L1-resident board state, with high instruction-level
// parallelism and well-predicted loop branches. The unrolled body
// below is dominated by single-cycle ALU work, giving the high
// integer IPC the paper reports for crafty.
const craftyBoards = 0x1_0000 // 256 words = 2 KB

func init() {
	register(Kernel{
		Name:        "crafty",
		Class:       Int,
		Description: "bitboard attack generation, popcount-heavy (SPECint crafty proxy)",
		Init: func(m *funcsim.Memory) {
			fillWords(m, craftyBoards, 256, 505)
		},
		Source: `
	; %g2 board end  %g3 file-mask constant  %l0/%l1 board pointers
	li   %g2, 0x107f0
	li   %g3, 0x7e7e7e7e7e7e7e7e
	li   %l0, 0x10000
	li   %l1, 0x10400
	li   %l2, 0          ; score
	li   %l4, 0
outer:
	ld   %o0, [%l0+0]    ; own pieces
	ld   %o1, [%l1+0]    ; enemy pieces
	; knight-ish attack spread
	sll  %o2, %o0, 7
	srl  %o3, %o0, 9
	or   %o2, %o2, %o3
	sll  %o4, %o0, 17
	srl  %o5, %o0, 15
	or   %o4, %o4, %o5
	or   %o2, %o2, %o4
	and  %o2, %o2, %g3   ; mask wraps
	and  %l3, %o2, %o1   ; captures
	popc %o3, %l3
	add  %l2, %l2, %o3
	; sliding attacks, serially fed by the capture set (occupancy
	; propagation is a dependent chain in real move generators)
	sll  %i0, %l3, 8
	or   %i0, %i0, %o1
	srl  %i1, %i0, 8
	or   %i0, %i0, %i1
	andn %i2, %i0, %o0
	and  %i2, %i2, %g3
	popc %i3, %i2
	add  %l2, %l2, %i3
	xor  %l4, %l4, %i2
	; occasional board update (biased, well-predicted)
	and  %i4, %l4, 31
	bne  %i4, %g0, skip
	st   %l4, [%l0+0]
skip:
	add  %l0, %l0, 8
	add  %l1, %l1, 24
	blt  %l1, %g2, outer
	; evaluation phase: weighted material count over the boards
	; (multiplies through the complex unit, as in crafty's Evaluate)
	li   %l0, 0x10000
	li   %l1, 0x10400
	li   %o5, 0x10000
	li   %i5, 0x10100
	li   %i6, 0
eval:
	ld   %o0, [%o5+0]
	popc %o1, %o0
	mul  %o2, %o1, 9
	add  %i6, %i6, %o2
	add  %o5, %o5, 8
	blt  %o5, %i5, eval
	add  %l2, %l2, %i6
	ba   outer
`,
	})
}
