package kernels

import "wsrs/internal/funcsim"

// mgrid proxy: multigrid V-cycle relaxation. A 7-point stencil over a
// 256 KB grid (L2-resident, regularly L1-missing) with two invariant
// smoothing coefficients; neighbours are reached with displacement
// addressing (±8 east/west, ±256 rows, ±8192 planes). Long fadd
// reduction trees per point give the moderate FP IPC of the original.
const (
	mgridGrid = 0x100_0000 // 32 Ki doubles = 256 KB
	mgridOut  = 0x140_0000
	mgridLen  = 32 * 1024
)

func init() {
	register(Kernel{
		Name:        "mgrid",
		Class:       FP,
		Description: "7-point multigrid relaxation stencil (SPECfp mgrid proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, mgridGrid, mgridLen, 808)
			m.WriteFloat64(0x9000, 0.5)
			m.WriteFloat64(0x9008, 0.0833333333)
		},
		Source: `
	; %l0 grid pointer (starts one plane in)  %l1 out pointer
	; %g5 scan end (one plane short)
	li   %g7, 0x9000
	fld  %f28, [%g7+0]
	fld  %f29, [%g7+8]
	li   %g5, 0x103dff8
	li   %l0, 0x1002000
	li   %l1, 0x1402000
outer:
	fld  %f0, [%l0+0]      ; centre
	fld  %f1, [%l0+8]      ; east
	fld  %f2, [%l0-8]      ; west
	fld  %f3, [%l0+256]    ; north
	fld  %f4, [%l0-256]    ; south
	fld  %f5, [%l0+8192]   ; up
	fld  %f6, [%l0-8192]   ; down
	; reduction tree
	fadd %f8, %f1, %f2
	fadd %f9, %f3, %f4
	fadd %f10, %f5, %f6
	fadd %f11, %f8, %f9
	fadd %f12, %f11, %f10
	fmul %f13, %f12, %f29  ; invariant weight
	fmul %f14, %f0, %f28   ; invariant centre weight
	fadd %f15, %f13, %f14
	fst  %f15, [%l1+0]
	add  %l0, %l0, 8
	add  %l1, %l1, 8
	blt  %l0, %g5, outer
	li   %l0, 0x1002000
	li   %l1, 0x1402000
	ba   outer
`,
	})
}
