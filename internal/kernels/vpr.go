package kernels

import "wsrs/internal/funcsim"

// vpr proxy: simulated-annealing placement. An xorshift generator
// picks two random grid cells, a |a-b| placement cost is computed and
// the swap is accepted on a ~50 % data-dependent branch — the
// poorly-predictable accept/reject decision that dominates the real
// placer. Accepted swaps execute two indexed stores (cracked µop
// pairs). The 128 KB grid is L2-resident.
const vprGrid = 0x10_0000 // 16 Ki words = 128 KB

func init() {
	register(Kernel{
		Name:        "vpr",
		Class:       Int,
		Description: "annealing placement with random swaps (SPECint vpr proxy)",
		Init: func(m *funcsim.Memory) {
			fillWords(m, vprGrid, 16*1024, 202)
		},
		Source: `
	; %g1 grid base  %g2 grid byte mask  %g4 accept threshold
	li   %g1, 0x100000
	li   %g2, 0x1fff8
	li   %g4, 127
	li   %l6, 0x9e3779b97f4a7c15  ; rng state
	li   %l2, 0                   ; accumulated cost
	li   %l4, 0                   ; accepted swaps
	li   %l5, 0                   ; move counter
	li   %g5, 1024
	li   %g6, 0x101000            ; recompute scan end (4 KB slice)
outer:
	; xorshift64
	sll  %o0, %l6, 13
	xor  %l6, %l6, %o0
	srl  %o0, %l6, 7
	xor  %l6, %l6, %o0
	sll  %o0, %l6, 17
	xor  %l6, %l6, %o0
	; two random cell offsets
	and  %o1, %l6, %g2
	srl  %o2, %l6, 24
	and  %o2, %o2, %g2
	ldi  %o3, [%g1+%o1]
	ldi  %o4, [%g1+%o2]
	; delta = |a - b|
	sub  %o5, %o3, %o4
	sra  %l0, %o5, 63
	xor  %o5, %o5, %l0
	sub  %o5, %o5, %l0
	; accept ~50% of the time on rng low bits
	and  %l1, %l6, 255
	bgt  %l1, %g4, reject
	sti  %o3, [%g1+%o2]   ; swap: two indexed stores (cracked)
	sti  %o4, [%g1+%o1]
	add  %l4, %l4, 1
reject:
	add  %l2, %l2, %o5
	add  %l5, %l5, 1
	blt  %l5, %g5, outer
	; periodic full-cost recompute (the annealer's bookkeeping pass)
	li   %l5, 0
	li   %i0, 0x100000
	li   %i1, 0
recost:
	ld   %i2, [%i0+0]
	ld   %i3, [%i0+8]
	sub  %i4, %i2, %i3
	sra  %i5, %i4, 63
	xor  %i4, %i4, %i5
	sub  %i4, %i4, %i5
	add  %i1, %i1, %i4
	add  %i0, %i0, 16
	blt  %i0, %g6, recost
	mov  %l2, %i1
	ba   outer
`,
	})
}
