// Package kernels provides the benchmark workloads of the evaluation:
// twelve proxy kernels standing in for the 5 SPECint2000 and 7
// SPECfp2000 programs of the paper's Figure 4 (gzip, vpr, gcc, mcf,
// crafty; wupwise, swim, mgrid, applu, galgel, equake, facerec).
//
// Each proxy is written in the simulator's assembly and captures the
// dominant dynamic character of its namesake: instruction mix
// (loads/stores/branches/fp), dependence structure (pointer chasing vs
// independent accumulators), branch predictability and working-set
// size relative to the 32 KB L1 / 512 KB L2 hierarchy. Kernels loop
// forever; the simulation harness decides warmup and measured slice
// lengths, mirroring the paper's fast-forward/warm/measure protocol.
//
// These are substitutions for the real SPEC binaries (see DESIGN.md):
// the paper's conclusions are relative comparisons across machine
// configurations on identical workloads, which the proxies preserve.
package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"wsrs/internal/asm"
	"wsrs/internal/funcsim"
	"wsrs/internal/isa"
)

// Class tags a kernel as integer or floating-point.
type Class string

// Kernel classes.
const (
	Int Class = "int"
	FP  Class = "fp"
)

// Kernel is one benchmark proxy.
type Kernel struct {
	Name        string
	Class       Class
	Description string
	Source      string
	// Init populates the memory image before execution.
	Init func(m *funcsim.Memory)
}

// Program assembles the kernel source.
func (k Kernel) Program() (*isa.Program, error) {
	return asm.Assemble(k.Source)
}

// NewSim returns a functional simulator positioned at the kernel
// entry, with memory initialized. The returned trace is endless.
func (k Kernel) NewSim() (*funcsim.Sim, error) {
	prog, err := k.Program()
	if err != nil {
		return nil, fmt.Errorf("kernel %s: %w", k.Name, err)
	}
	mem := funcsim.NewMemory()
	if k.Init != nil {
		k.Init(mem)
	}
	return funcsim.New(prog, mem), nil
}

var registry = map[string]Kernel{}

func register(k Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("kernels: duplicate " + k.Name)
	}
	registry[k.Name] = k
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	k, ok := registry[name]
	return k, ok
}

// All returns every kernel, integer benchmarks first, each group in
// the paper's Figure 4 order.
func All() []Kernel {
	order := map[string]int{
		"gzip": 0, "vpr": 1, "gcc": 2, "mcf": 3, "crafty": 4,
		"wupwise": 5, "swim": 6, "mgrid": 7, "applu": 8,
		"galgel": 9, "equake": 10, "facerec": 11,
	}
	out := make([]Kernel, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := order[out[i].Name]
		oj, jok := order[out[j].Name]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns all kernel names in Figure 4 order.
func Names() []string {
	ks := All()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return names
}

// Integers and Floats return the benchmark subsets of Figure 4.
func Integers() []Kernel { return filter(Int) }

// Floats returns the floating-point kernels.
func Floats() []Kernel { return filter(FP) }

func filter(c Class) []Kernel {
	var out []Kernel
	for _, k := range All() {
		if k.Class == c {
			out = append(out, k)
		}
	}
	return out
}

// fillWords writes n pseudo-random 64-bit words at base.
func fillWords(m *funcsim.Memory, base uint64, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		m.WriteInt64(base+uint64(8*i), rng.Int63())
	}
}

// fillFloats writes n pseudo-random doubles in [0,1) at base.
func fillFloats(m *funcsim.Memory, base uint64, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		m.WriteFloat64(base+uint64(8*i), rng.Float64())
	}
}

// fillRing writes a pseudo-random permutation cycle of n word-sized
// pointers at base: entry i holds the byte address of the next entry,
// forming one cycle that visits all n slots (for pointer chasing).
func fillRing(m *funcsim.Memory, base uint64, n int, stride int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		from := perm[i]
		to := perm[(i+1)%n]
		m.WriteInt64(base+uint64(stride*from), int64(base+uint64(stride*to)))
	}
}
