package kernels

import "wsrs/internal/funcsim"

// mcf proxy: network-simplex arc scanning. The dominant behaviour of
// mcf is serialized pointer chasing through a working set far larger
// than the L2, interleaved with a cheap sequential cost scan. The
// 4 MB node ring misses the 512 KB L2 on nearly every hop — with the
// dependent-load serialization through those misses, mcf is the
// lowest-IPC benchmark of the suite, exactly as in Figure 4.
const (
	mcfRing   = 0x100_0000 // 64 Ki nodes x 64 B = 4 MB (permuted ring)
	mcfNNodes = 65536
	mcfStride = 64
	mcfCosts  = 0x80_0000 // 32 Ki words = 256 KB sequential costs
)

func init() {
	register(Kernel{
		Name:        "mcf",
		Class:       Int,
		Description: "L2-missing pointer chase with arc cost scan (SPECint mcf proxy)",
		Init: func(m *funcsim.Memory) {
			fillRing(m, mcfRing, mcfNNodes, mcfStride, 404)
			for i := 0; i < mcfNNodes; i++ {
				m.WriteInt64(uint64(mcfRing+i*mcfStride)+8, int64(i%97)-48)
			}
			fillWords(m, mcfCosts, 32*1024, 405)
		},
		Source: `
	; %g2 cost scan end  %l0 node pointer  %l3 cost scan pointer
	li   %g2, 0x83ff00
	li   %l0, 0x1000000
	li   %l3, 0x800000
	li   %l2, 0         ; potential accumulator
	li   %l5, 0
	li   %l6, 0         ; chase counter
	li   %g7, 4096
outer:
	ld   %o1, [%l0+8]   ; arc cost
	ld   %l0, [%l0]     ; chase: L2 miss nearly every time
	add  %l2, %l2, %o1
	; overlap: short sequential scan while the miss is outstanding
	ld   %o2, [%l3+0]
	ld   %o3, [%l3+8]
	sub  %o4, %o2, %o3
	add  %l5, %l5, %o4
	add  %l3, %l3, 16
	blt  %l3, %g2, noreset
	li   %l3, 0x800000
noreset:
	add  %l6, %l6, 1
	blt  %l6, %g7, cont
	; price-update phase: sweep an 8 KB slice of node potentials
	; (the simplex pivot's dual update)
	li   %l6, 0
	li   %o5, 0x800000
	li   %i0, 0x802000
price:
	ld   %i1, [%o5+0]
	add  %i1, %i1, %l2
	sra  %i2, %i1, 1
	st   %i2, [%o5+0]
	add  %o5, %o5, 8
	blt  %o5, %i0, price
cont:
	; reduced-cost test (mostly taken)
	blt  %l2, %g0, outer
	sub  %l2, %l2, %o1
	ba   outer
`,
	})
}
