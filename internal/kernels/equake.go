package kernels

import (
	"math/rand"

	"wsrs/internal/funcsim"
)

// equake proxy: sparse matrix-vector product (earthquake wave
// propagation). Column indices are loaded sequentially, then used as
// irregular gather offsets into the solution vector — the
// double-indirection memory pattern of CSR sparse algebra. The 512 KB
// value array streams through the L2 while the 64 KB vector stays
// hot. The gather itself is the one genuinely indexed access.
const (
	equakeVal = 0x100_0000 // 64 Ki doubles = 512 KB
	equakeIdx = 0x180_0000 // 64 Ki words: gather byte offsets
	equakeVec = 0x20_0000  // 8 Ki doubles = 64 KB
	equakeOut = 0x30_0000
	equakeNNZ = 64 * 1024
)

func init() {
	register(Kernel{
		Name:        "equake",
		Class:       FP,
		Description: "CSR sparse matrix-vector gather (SPECfp equake proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, equakeVal, equakeNNZ, 222)
			rng := rand.New(rand.NewSource(223))
			for i := 0; i < equakeNNZ; i++ {
				// Random column, as a ready-to-use byte offset.
				m.WriteInt64(equakeIdx+uint64(8*i), int64(rng.Intn(8*1024))*8)
			}
			fillFloats(m, equakeVec, 8*1024, 224)
		},
		Source: `
	; %l0 index pointer  %l1 value pointer  %l3 out pointer
	; %g3 vector base  %g4 index end  %g5 row gate  %g7 out end
	li   %g3, 0x200000
	li   %g4, 0x187ff00
	li   %g5, 120
	li   %g7, 0x301ff0
	li   %l0, 0x1800000
	li   %l1, 0x1000000
	li   %l3, 0x300000
	li   %l4, 0          ; row element counter
outer:
	ld   %o0, [%l0+0]    ; column byte offset
	fld  %f0, [%l1+0]    ; matrix value (streaming)
	fldi %f1, [%g3+%o0]  ; x[col] gather (irregular, indexed)
	fmul %f2, %f0, %f1
	fadd %f8, %f8, %f2   ; row accumulator
	add  %l0, %l0, 8
	add  %l1, %l1, 8
	add  %l4, %l4, 8
	blt  %l4, %g5, next
	fst  %f8, [%l3+0]    ; store row result
	fsub %f8, %f8, %f8   ; reset accumulator
	add  %l3, %l3, 8
	li   %l4, 0
	blt  %l3, %g7, next
	li   %l3, 0x300000
next:
	blt  %l0, %g4, outer
	li   %l0, 0x1800000
	li   %l1, 0x1000000
	ba   outer
`,
	})
}
