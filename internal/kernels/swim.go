package kernels

import "wsrs/internal/funcsim"

// swim proxy: shallow-water finite-difference stencil. Three 1 MB
// arrays streamed with displacement-addressed neighbour accesses and
// an invariant coefficient; the 3 MB combined working set defeats the
// 512 KB L2, so performance is bandwidth-bound like the original.
const (
	swimU   = 0x100_0000 // 128 Ki doubles = 1 MB
	swimV   = 0x140_0000
	swimP   = 0x180_0000
	swimLen = 128 * 1024
)

func init() {
	register(Kernel{
		Name:        "swim",
		Class:       FP,
		Description: "streaming shallow-water stencil, memory-bound (SPECfp swim proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, swimU, swimLen, 707)
			fillFloats(m, swimV, swimLen, 708)
			m.WriteFloat64(0x9000, 0.125) // dt/dx coefficient
		},
		Source: `
	; %l0 u pointer  %l1 v pointer  %l2 p pointer  %g5 u scan end
	li   %g6, 0x9000
	fld  %f29, [%g6+0]   ; invariant coefficient
	li   %g5, 0x10fe000  ; stop one row short of the array end
	li   %l0, 0x1000000
	li   %l1, 0x1400000
	li   %l2, 0x1800000
outer:
	fld  %f0, [%l0+0]    ; u[i,j]
	fld  %f1, [%l0+8]    ; u[i,j+1]   (east)
	fld  %f2, [%l0+4096] ; u[i+1,j]   (south, 512-double rows)
	fld  %f3, [%l1+0]    ; v[i,j]
	fadd %f4, %f0, %f1
	fadd %f5, %f4, %f2
	fmul %f6, %f5, %f29  ; invariant operand
	fsub %f7, %f6, %f3
	fst  %f7, [%l2+0]    ; p[i,j]
	; second half-step on v
	fld  %f8, [%l1+8]
	fsub %f9, %f8, %f3
	fmul %f10, %f9, %f29
	fadd %f11, %f10, %f0
	fst  %f11, [%l1+0]
	add  %l0, %l0, 8
	add  %l1, %l1, 8
	add  %l2, %l2, 8
	blt  %l0, %g5, outer
	li   %l0, 0x1000000
	li   %l1, 0x1400000
	li   %l2, 0x1800000
	ba   outer
`,
	})
}
