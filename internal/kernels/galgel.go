package kernels

import "wsrs/internal/funcsim"

// galgel proxy: Galerkin spectral method — dense matrix-vector
// products with pairwise reductions. Two alternating accumulators
// hide part of the 4-cycle fadd latency; a 64 KB matrix tile plus
// basis vectors straddle the L1. Each inner product ends on a
// predictable loop branch with a result store.
const (
	galgelMat = 0x10_0000 // 8 Ki doubles = 64 KB
	galgelVec = 0x20_0000 // 4 Ki doubles = 32 KB
	galgelOut = 0x30_0000
)

func init() {
	register(Kernel{
		Name:        "galgel",
		Class:       FP,
		Description: "dense Galerkin inner products with reductions (SPECfp galgel proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, galgelMat, 8*1024, 111)
			fillFloats(m, galgelVec, 4*1024, 112)
		},
		Source: `
	; %l0 matrix pointer  %l2 vector pointer  %l3 out pointer
	; %g4 matrix end  %g5 vector end  %g7 out end
	li   %g4, 0x10fe00   ; leaves one full row of slack
	li   %g5, 0x207ff0
	li   %g7, 0x301ff0
	li   %l0, 0x100000
	li   %l3, 0x300000
outer:
	li   %l1, 0          ; inner trip (bytes)
	li   %l2, 0x200000   ; vector pointer for this row
	fsub %f16, %f16, %f16  ; acc0 = 0
	fsub %f17, %f17, %f17  ; acc1 = 0
	li   %l5, 256
inner:
	fld  %f0, [%l0+0]
	fld  %f1, [%l2+0]
	fmul %f2, %f0, %f1
	fadd %f16, %f16, %f2
	fld  %f3, [%l0+8]
	fld  %f4, [%l2+8]
	fmul %f5, %f3, %f4
	fadd %f17, %f17, %f5
	add  %l0, %l0, 16
	add  %l2, %l2, 16
	add  %l1, %l1, 16
	blt  %l1, %l5, inner
	fadd %f18, %f16, %f17
	fst  %f18, [%l3+0]
	add  %l3, %l3, 8
	blt  %l3, %g7, norow
	li   %l3, 0x300000
norow:
	blt  %l0, %g4, outer
	li   %l0, 0x100000
	ba   outer
`,
	})
}
