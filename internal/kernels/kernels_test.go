package kernels

import (
	"bytes"
	"testing"

	"wsrs/internal/funcsim"
	"wsrs/internal/isa"
	"wsrs/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	ks := All()
	if len(ks) != 12 {
		t.Fatalf("registry has %d kernels, want 12 (5 int + 7 fp, Figure 4)", len(ks))
	}
	wantOrder := []string{
		"gzip", "vpr", "gcc", "mcf", "crafty",
		"wupwise", "swim", "mgrid", "applu", "galgel", "equake", "facerec",
	}
	for i, k := range ks {
		if k.Name != wantOrder[i] {
			t.Errorf("kernel %d = %s, want %s", i, k.Name, wantOrder[i])
		}
	}
	if len(Integers()) != 5 || len(Floats()) != 7 {
		t.Errorf("class split %d/%d, want 5/7", len(Integers()), len(Floats()))
	}
	if _, ok := ByName("gzip"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName must reject unknown names")
	}
	if len(Names()) != 12 {
		t.Error("Names length")
	}
}

func TestAllKernelsAssemble(t *testing.T) {
	for _, k := range All() {
		if _, err := k.Program(); err != nil {
			t.Errorf("%s does not assemble: %v", k.Name, err)
		}
	}
}

// runKernel executes n µops of the kernel, collecting stream stats.
func runKernel(t *testing.T, k Kernel, n int) (*funcsim.Sim, []trace.MicroOp) {
	t.Helper()
	sim, err := k.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]trace.MicroOp, 0, n)
	for i := 0; i < n; i++ {
		m, ok := sim.Next()
		if !ok {
			t.Fatalf("%s: trace ended after %d µops: %v", k.Name, i, sim.Err())
		}
		ops = append(ops, m)
	}
	return sim, ops
}

func TestAllKernelsExecuteIndefinitely(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			sim, ops := runKernel(t, k, 30000)
			if sim.Err() != nil {
				t.Fatalf("execution error: %v", sim.Err())
			}
			// Sanity: every kernel must branch (it loops).
			var branches, loads int
			for _, m := range ops {
				if m.IsBranch {
					branches++
				}
				if m.Class == isa.ClassLoad {
					loads++
				}
			}
			if branches == 0 {
				t.Error("kernel never branches")
			}
			if loads == 0 {
				t.Error("kernel never loads")
			}
		})
	}
}

func TestKernelClassCharacter(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			_, ops := runKernel(t, k, 20000)
			var fp int
			for _, m := range ops {
				if m.Class == isa.ClassFP || m.Class == isa.ClassFPDiv ||
					m.Op == isa.OpFLD || m.Op == isa.OpFLDI || m.Op == isa.OpFST {
					fp++
				}
			}
			frac := float64(fp) / float64(len(ops))
			if k.Class == FP && frac < 0.15 {
				t.Errorf("fp kernel has only %.1f%% fp work", 100*frac)
			}
			if k.Class == Int && frac > 0.02 {
				t.Errorf("int kernel has %.1f%% fp work", 100*frac)
			}
		})
	}
}

func TestWorkingSetsDiffer(t *testing.T) {
	// mcf must touch far more memory than crafty over the same
	// window (its L2-missing character depends on it).
	mcf, _ := ByName("mcf")
	crafty, _ := ByName("crafty")
	simM, _ := runKernel(t, mcf, 50000)
	simC, _ := runKernel(t, crafty, 50000)
	if simM.Memory().Footprint() < 16*simC.Memory().Footprint() {
		t.Errorf("mcf footprint %d vs crafty %d: expected >= 16x",
			simM.Memory().Footprint(), simC.Memory().Footprint())
	}
}

func TestPointerChaseKernelsSerializeLoads(t *testing.T) {
	// gcc and mcf chase pointers: some loads' address registers are
	// produced by an immediately preceding load (dependent loads).
	for _, name := range []string{"gcc", "mcf"} {
		k, _ := ByName(name)
		_, ops := runKernel(t, k, 20000)
		writers := map[isa.LogicalReg]isa.Class{}
		depLoads := 0
		for _, m := range ops {
			if m.Class == isa.ClassLoad && m.NSrc >= 1 {
				if writers[m.Src[0]] == isa.ClassLoad {
					depLoads++
				}
			}
			if m.HasDst {
				writers[m.Dst] = m.Class
			}
		}
		if depLoads == 0 {
			t.Errorf("%s: no load-dependent loads found", name)
		}
	}
}

func TestGccExercisesWindows(t *testing.T) {
	k, _ := ByName("gcc")
	_, ops := runKernel(t, k, 40000)
	var saves int
	for _, m := range ops {
		if m.Op == isa.OpSAVE {
			saves++
		}
	}
	if saves == 0 {
		t.Error("gcc proxy must exercise register windows")
	}
}

func TestIndexedStoresCracked(t *testing.T) {
	// vpr swaps via indexed stores: cracked µop pairs must appear.
	k, _ := ByName("vpr")
	_, ops := runKernel(t, k, 20000)
	pairs := 0
	for _, m := range ops {
		if !m.LastOfInst {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("vpr must emit cracked indexed stores")
	}
}

func TestInvariantOperandsInFPKernels(t *testing.T) {
	// wupwise/facerec hold invariant coefficients in fp registers:
	// some fp registers must be read many times without being
	// rewritten (the unbalancing mechanism of §3.3).
	for _, name := range []string{"wupwise", "facerec"} {
		k, _ := ByName(name)
		_, ops := runKernel(t, k, 30000)
		reads := map[isa.LogicalReg]int{}
		writes := map[isa.LogicalReg]int{}
		for _, m := range ops {
			for i := 0; i < m.NSrc; i++ {
				if m.Src[i].Class == isa.RegFP {
					reads[m.Src[i]]++
				}
			}
			if m.HasDst && m.Dst.Class == isa.RegFP {
				writes[m.Dst]++
			}
		}
		found := false
		for r, n := range reads {
			if n > 1000 && writes[r] <= 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no register-held invariant operands found", name)
		}
	}
}

func TestBranchPredictabilityVaries(t *testing.T) {
	// Count taken-rate entropy proxies: vpr's accept branch should
	// be near 50/50; facerec's loop branches heavily taken.
	rate := func(name string) float64 {
		k, _ := ByName(name)
		_, ops := runKernel(t, k, 40000)
		var cond, taken int
		for _, m := range ops {
			if m.IsCond {
				cond++
				if m.Taken {
					taken++
				}
			}
		}
		if cond == 0 {
			t.Fatalf("%s has no conditional branches", name)
		}
		return float64(taken) / float64(cond)
	}
	if r := rate("facerec"); r < 0.85 {
		t.Errorf("facerec loop branches taken rate = %.2f, want high", r)
	}
	if r := rate("vpr"); r < 0.2 || r > 0.8 {
		t.Errorf("vpr accept branch taken rate = %.2f, want mid-range", r)
	}
}

func TestKernelsEncodeDecodeExecuteIdentically(t *testing.T) {
	// Round-trip every kernel through the binary encoding and verify
	// the decoded program produces a bit-identical micro-op trace.
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, err := k.Program()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := isa.WriteProgram(&buf, prog); err != nil {
				t.Fatal(err)
			}
			decoded, err := isa.ReadProgram(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Len() != prog.Len() {
				t.Fatalf("decoded %d instructions, want %d", decoded.Len(), prog.Len())
			}
			memA := funcsim.NewMemory()
			memB := funcsim.NewMemory()
			if k.Init != nil {
				k.Init(memA)
				k.Init(memB)
			}
			a := funcsim.New(prog, memA)
			b := funcsim.New(decoded, memB)
			for i := 0; i < 5000; i++ {
				ma, oka := a.Next()
				mb, okb := b.Next()
				if oka != okb {
					t.Fatalf("µop %d: stream divergence", i)
				}
				if !oka {
					break
				}
				if ma != mb {
					t.Fatalf("µop %d differs:\n  orig    %+v\n  decoded %+v", i, ma, mb)
				}
			}
		})
	}
}
