package kernels

import (
	"math/rand"

	"wsrs/internal/funcsim"
)

// gcc proxy: IR-tree walking. A 128 KB ring of 64-byte "nodes" is
// chased through next pointers; a branch ladder dispatches on each
// node's tag (the switch-heavy character of the compiler; the tag
// distribution is skewed toward the common case like real IR node
// kinds), one rare case calls a helper through the register-window
// calling convention (SAVE/RESTORE micro-ops), and a result field is
// written back per node.
const (
	gccNodes  = 0x10_0000 // 2 Ki nodes x 64 B = 128 KB
	gccNNodes = 2048
	gccStride = 64
)

func init() {
	register(Kernel{
		Name:        "gcc",
		Class:       Int,
		Description: "tag-dispatched IR walk over pointer-linked nodes (SPECint gcc proxy)",
		Init: func(m *funcsim.Memory) {
			fillRing(m, gccNodes, gccNNodes, gccStride, 303)
			rng := rand.New(rand.NewSource(304))
			for i := 0; i < gccNNodes; i++ {
				base := uint64(gccNodes + i*gccStride)
				payload := int64(rng.Int63() &^ 3)
				// Skewed tag mix, like IR node kinds: 70 % the
				// common case, rare helper calls.
				var tag int64
				switch r := rng.Intn(100); {
				case r < 70:
					tag = 0
				case r < 85:
					tag = 1
				case r < 96:
					tag = 2
				default:
					tag = 3
				}
				m.WriteInt64(base+8, payload|tag)
			}
		},
		Source: `
	; %g4,%g5,%g6 tag comparison constants; %l0 current node pointer
	li   %g4, 1
	li   %g5, 2
	li   %g6, 3
	li   %l0, 0x100000
	li   %l1, 0          ; running hash
outer:
	ld   %o1, [%l0+8]    ; payload
	and  %o2, %o1, 3     ; tag
	beq  %o2, %g0, t0
	beq  %o2, %g4, t1
	beq  %o2, %g5, t2
	; tag 3 (rare): helper call through a register window
	call helper
	ba   done
t0:
	add  %l1, %l1, %o1
	srl  %o3, %l1, 5
	xor  %l1, %l1, %o3
	ba   done
t1:
	sub  %l1, %l1, %o1
	ba   done
t2:
	srl  %o3, %o1, 3
	xor  %l1, %l1, %o3
	ba   done
done:
	st   %l1, [%l0+16]   ; write back a computed field
	ld   %l0, [%l0]      ; chase: next node pointer
	ba   outer

helper:
	; mix the payload through a fresh window (exercises SAVE/RESTORE)
	save
	srl  %l2, %i1, 7
	xor  %l2, %l2, %i1
	add  %l2, %l2, 99
	mov  %i1, %l2        ; return through the window overlap
	restore
	xor  %l1, %l1, %o1
	jr   %o7
`,
	})
}
