package kernels

import "wsrs/internal/funcsim"

// gzip proxy: LZ77-style match finding. A hash of the current input
// word selects a chain head; the candidate match is extended word by
// word. Data-dependent match/no-match branches give gzip its
// characteristic misprediction rate; the 128 KB sliding window plus
// 64 KB hash table keep the working set L2-resident with regular L1
// misses. As in compiled SPARC code, the scan and match loops use
// register+immediate (monadic) addressing; only the hash-table probe
// is an indexed access.
const (
	gzipInput = 0x10_0000 // 16 Ki words = 128 KB window
	gzipHash  = 0x20_0000 // 8 Ki words = 64 KB heads
	gzipOut   = 0x30_0000 // emitted tokens
)

func init() {
	register(Kernel{
		Name:        "gzip",
		Class:       Int,
		Description: "LZ77 hash-chain match finder (SPECint gzip proxy)",
		Init: func(m *funcsim.Memory) {
			// Compressible input: small alphabet so matches happen.
			fillWords(m, gzipInput, 16*1024, 101)
			for i := 0; i < 16*1024; i++ {
				v := m.ReadInt64(gzipInput + uint64(8*i))
				m.WriteInt64(gzipInput+uint64(8*i), v&0x3F) // 64 symbols
			}
		},
		Source: `
	; %g1 window base  %g2 hash base  %g3 candidate offset mask
	; %g4 hash offset mask  %g5 scan end (with match slack)
	; %g7 out end  %l6 max match length
	li   %g1, 0x100000
	li   %g2, 0x200000
	li   %g3, 0x1ff00
	li   %g4, 0xfff8
	li   %g5, 0x11fe00
	li   %g7, 0x30ff00
	li   %l0, 0x100000   ; scan pointer
	li   %l3, 0x300000   ; out pointer
	li   %l5, 0          ; checksum
	li   %l6, 64
outer:
	ld   %o0, [%l0+0]    ; x = *scan
	; h = (x ^ x>>13 ^ x>>29) & hashmask
	srl  %o1, %o0, 13
	xor  %o1, %o1, %o0
	srl  %o2, %o0, 29
	xor  %o1, %o1, %o2
	sll  %o1, %o1, 3
	and  %o1, %o1, %g4
	ldi  %o3, [%g2+%o1]  ; chain head (hash probe: indexed)
	sub  %o6, %l0, %g1   ; current window offset
	sti  %o6, [%g2+%o1]  ; head = current (indexed store: cracked)
	and  %o3, %o3, %g3
	add  %o3, %o3, %g1   ; candidate pointer
	mov  %l1, %l0        ; current match pointer
	li   %l2, 0          ; match length (bytes)
match:
	ld   %o4, [%o3+0]
	ld   %o5, [%l1+0]
	bne  %o4, %o5, emit  ; data-dependent: the gzip mispredict source
	add  %l2, %l2, 8
	add  %o3, %o3, 8
	add  %l1, %l1, 8
	blt  %l2, %l6, match
emit:
	st   %l2, [%l3+0]    ; emit token
	add  %l3, %l3, 8
	add  %l5, %l5, %l2   ; checksum
	xor  %l5, %l5, %o0
	blt  %l3, %g7, nowrap
	li   %l3, 0x300000
nowrap:
	add  %l0, %l0, 8
	blt  %l0, %g5, outer
	; literal-emission phase: after each window pass, stream a block
	; of literals to the output (the copy-dominated half of deflate)
	li   %l0, 0x100000
	li   %l1, 0x100000
	li   %l2, 0x101000   ; 512-word literal block
copy:
	ld   %o0, [%l1+0]
	ld   %o1, [%l1+8]
	st   %o0, [%l3+0]
	xor  %l5, %l5, %o0
	add  %l1, %l1, 16
	add  %l3, %l3, 8
	blt  %l3, %g7, nowrap2
	li   %l3, 0x300000
nowrap2:
	blt  %l1, %l2, copy
	ba   outer
`,
	})
}
