package kernels

import "wsrs/internal/funcsim"

// wupwise proxy: complex BLAS-like matrix-vector kernel (quantum
// chromodynamics SU(3) multiplies). Four independent multiply-
// accumulate streams with loop-invariant coefficients held in
// registers — the classic optimized-FP-code pattern the paper calls
// out in §3.3: "the compiler tends to maintain invariant operands in
// the registers", which is precisely what unbalances WSRS cluster
// allocation on this benchmark (~100 % unbalancing degree in
// Figure 5). The 16 KB working set is L1-resident; IPC is the highest
// of the FP suite.
const wupwiseData = 0x10_0000 // 2 Ki doubles = 16 KB

func init() {
	register(Kernel{
		Name:        "wupwise",
		Class:       FP,
		Description: "complex MACs with register-held invariants (SPECfp wupwise proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, wupwiseData, 2048, 606)
			m.WriteFloat64(0x9000, 0.7310585786)  // coefficient c1
			m.WriteFloat64(0x9008, -0.2689414213) // coefficient c2
		},
		Source: `
	; stream pointers %l0/%l1; invariant alpha in %f30/%f31
	li   %g3, 0x9000
	fld  %f30, [%g3+0]
	fld  %f31, [%g3+8]
	li   %g5, 0x101fe0   ; stream 0 end
	li   %l0, 0x100000
	li   %l1, 0x102000
outer:
	; complex a = (f0,f1), b = (f2,f3): all loaded operands
	fld  %f0, [%l0+0]
	fld  %f1, [%l0+8]
	fld  %f2, [%l1+0]
	fld  %f3, [%l1+8]
	; complex multiply a*b (loaded x loaded)
	fmul %f8, %f0, %f2
	fmul %f9, %f1, %f3
	fsub %f10, %f8, %f9    ; real part
	fmul %f11, %f0, %f3
	fmul %f12, %f1, %f2
	fadd %f13, %f11, %f12  ; imaginary part
	; zaxpy tail: alpha held in registers (the invariant operands
	; of paper 3.3 that unbalance WSRS allocation)
	fmul %f14, %f10, %f30
	fmul %f15, %f13, %f31
	fadd %f16, %f16, %f14
	fadd %f17, %f17, %f15
	; advance the streams
	add  %l0, %l0, 16
	add  %l1, %l1, 16
	blt  %l0, %g5, outer
	li   %l0, 0x100000
	li   %l1, 0x102000
	ba   outer
`,
	})
}
