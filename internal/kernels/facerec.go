package kernels

import "wsrs/internal/funcsim"

// facerec proxy: face-graph correlation — long dot products between a
// probe feature vector and gallery rows, four-way unrolled with
// independent accumulators and two register-held invariant gains.
// Branches are loop-counting and essentially perfectly predicted; the
// 256 KB gallery is L2-resident. Like wupwise, the invariant register
// operands pin allocation freedom, making facerec the other
// ~100 %-unbalanced benchmark of Figure 5.
const (
	facerecGallery = 0x100_0000 // 32 Ki doubles = 256 KB
	facerecProbe   = 0x20_0000  // 2 Ki doubles = 16 KB
	facerecOut     = 0x30_0000
)

func init() {
	register(Kernel{
		Name:        "facerec",
		Class:       FP,
		Description: "gallery correlation dot products, unrolled (SPECfp facerec proxy)",
		Init: func(m *funcsim.Memory) {
			fillFloats(m, facerecGallery, 32*1024, 333)
			fillFloats(m, facerecProbe, 2*1024, 334)
			m.WriteFloat64(0x9000, 1.0625)
			m.WriteFloat64(0x9008, 0.975)
		},
		Source: `
	; %l0 gallery pointer  %l2 probe pointer  %l3 out pointer
	; %g4 gallery end  %g7 out end; invariant gains in %f30/%f31
	li   %o5, 0x9000
	fld  %f30, [%o5+0]
	fld  %f31, [%o5+8]
	li   %g4, 0x103fe00
	li   %g7, 0x300ff0
	li   %l0, 0x1000000
	li   %l3, 0x300000
outer:
	li   %l1, 0          ; inner trip (bytes)
	li   %l2, 0x200000   ; probe pointer
	li   %l5, 512        ; inner trip count (bytes)
	fsub %f16, %f16, %f16
	fsub %f17, %f17, %f17
	fsub %f18, %f18, %f18
	fsub %f19, %f19, %f19
inner:
	; four-way unrolled dot product; lanes 1 and 3 apply the
	; register-held gains (invariant operands, paper 3.3)
	fld  %f0, [%l0+0]
	fld  %f1, [%l2+0]
	fmul %f2, %f0, %f1
	fadd %f16, %f16, %f2
	fld  %f4, [%l0+8]
	fld  %f5, [%l2+8]
	fmul %f6, %f4, %f30
	fmul %f7, %f6, %f5
	fadd %f17, %f17, %f7
	fld  %f8, [%l0+16]
	fld  %f9, [%l2+16]
	fmul %f10, %f8, %f9
	fadd %f18, %f18, %f10
	fld  %f12, [%l0+24]
	fld  %f13, [%l2+24]
	fmul %f14, %f12, %f31
	fmul %f15, %f14, %f13
	fadd %f19, %f19, %f15
	add  %l0, %l0, 32
	add  %l2, %l2, 32
	add  %l1, %l1, 32
	blt  %l1, %l5, inner
	; combine and emit the correlation score
	fadd %f20, %f16, %f17
	fadd %f21, %f18, %f19
	fadd %f22, %f20, %f21
	fst  %f22, [%l3+0]
	add  %l3, %l3, 8
	blt  %l3, %g7, norow
	li   %l3, 0x300000
norow:
	blt  %l0, %g4, outer
	li   %l0, 0x1000000
	ba   outer
`,
	})
}
