package wsrs

import (
	"fmt"
	"math"
)

// SeedStats summarizes a quantity across allocation-policy seeds. The
// RM/RC policies are randomized (§5.2.1), so headline IPCs carry
// seed-to-seed variation; this is the error bar for Figure 4.
type SeedStats struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// String renders "mean ± std [min, max]".
func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// RunKernelSeeds runs the same (configuration, kernel) simulation
// under n different allocation-policy seeds (1..n) and returns all
// results in seed order. The seeds fan out across opts.Parallelism
// workers over one memoized trace.
func RunKernelSeeds(conf ConfigName, kernel string, opts SimOpts, n int) ([]Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("wsrs: need at least one seed")
	}
	if err := ValidateKernelNames([]string{kernel}); err != nil {
		return nil, err
	}
	if _, err := ValidateConfigName(string(conf)); err != nil {
		return nil, err
	}
	cells := make([]GridCell, n)
	for i := range cells {
		cells[i] = GridCell{Kernel: kernel, Config: conf, Seed: int64(i + 1)}
	}
	grid, err := RunGrid(cells, opts, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]Result, n)
	for i, g := range grid {
		out[i] = g.Result
	}
	return out, nil
}

// IPCStats aggregates the IPCs of a multi-seed run.
func IPCStats(results []Result) SeedStats {
	return statsOf(results, func(r Result) float64 { return r.IPC })
}

// UnbalancingStats aggregates the unbalancing degrees.
func UnbalancingStats(results []Result) SeedStats {
	return statsOf(results, func(r Result) float64 { return r.UnbalancingDegree })
}

func statsOf(results []Result, f func(Result) float64) SeedStats {
	s := SeedStats{N: len(results), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return SeedStats{}
	}
	for _, r := range results {
		v := f(r)
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(s.N)
	for _, r := range results {
		d := f(r) - s.Mean
		s.Std += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	} else {
		s.Std = 0
	}
	return s
}
