package wsrs

import (
	"errors"
	"reflect"
	"testing"

	"wsrs/internal/check"
	"wsrs/internal/funcsim"
	"wsrs/internal/isa"
	"wsrs/internal/kernels"
	"wsrs/internal/pipeline"
	"wsrs/internal/trace"
	"wsrs/internal/tracecache"
)

// fuzzReplayCap bounds the stream comparison: kernels (and many fuzzed
// programs) loop forever, so only a prefix is diffed. It deliberately
// exceeds the trace cache's internal chunk size so the grow-on-demand
// arena path is exercised, not just the first chunk.
const fuzzReplayCap = 6000

// fuzzReplayWords reinterprets fuzz input as the little-endian 32-bit
// word stream the binary program encoding is defined over.
func fuzzReplayWords(data []byte) []uint32 {
	words := make([]uint32, 0, len(data)/4)
	for i := 0; i+4 <= len(data); i += 4 {
		words = append(words, uint32(data[i])|uint32(data[i+1])<<8|
			uint32(data[i+2])<<16|uint32(data[i+3])<<24)
	}
	return words
}

// FuzzReplayPath drives random programs through the whole replay path
// the grid runs on — encode → functional simulation memoized in the
// trace cache's grow-only arena → cursor replay → timing simulation —
// and checks it against a straight funcsim execution:
//
//  1. the cursor must reproduce the direct µop stream exactly (the
//     arena snapshots lose or reorder nothing, including across chunk
//     boundaries and early source termination);
//  2. the pipeline must simulate the replayed stream with the co-sim
//     oracle diffing every retired µop against an independent
//     functional reference, with no checker firing.
//
// The seed corpus is the encoded program of every SPEC proxy kernel,
// so the fuzzer starts from each opcode/operand/loop shape the
// evaluation actually uses.
func FuzzReplayPath(f *testing.F) {
	for _, k := range kernels.All() {
		prog, err := k.Program()
		if err != nil {
			f.Fatal(err)
		}
		words, err := isa.Encode(prog)
		if err != nil {
			f.Fatal(err)
		}
		buf := make([]byte, 4*len(words))
		for i, w := range words {
			buf[4*i] = byte(w)
			buf[4*i+1] = byte(w >> 8)
			buf[4*i+2] = byte(w >> 16)
			buf[4*i+3] = byte(w >> 24)
		}
		f.Add(buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := isa.Decode(fuzzReplayWords(data))
		if err != nil || len(prog.Insts) == 0 {
			return
		}
		// The direct stream: funcsim executed straight. Execution
		// errors (window underflow, bad memory shapes) just end the
		// stream; the replay must then end at the same µop.
		direct := funcsim.New(prog, funcsim.NewMemory())
		var want []trace.MicroOp
		for len(want) < fuzzReplayCap {
			m, ok := direct.Next()
			if !ok {
				break
			}
			want = append(want, m)
		}

		cache := tracecache.New()
		ent, err := cache.Get("fuzz", func() (tracecache.Source, error) {
			return funcsim.New(prog, funcsim.NewMemory()), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cur := ent.Reader()
		for i := range want {
			m, ok := cur.Next()
			if !ok {
				t.Fatalf("replay ended at µop %d of %d (source err: %v)", i, len(want), cur.Err())
			}
			if !reflect.DeepEqual(m, want[i]) {
				t.Fatalf("replay diverged at µop %d:\n direct: %+v\n replay: %+v", i, want[i], m)
			}
		}
		if len(want) < fuzzReplayCap {
			if m, ok := cur.Next(); ok {
				t.Fatalf("replay outran funcsim after %d µops: extra %+v", len(want), m)
			}
		}
		if len(want) == 0 {
			return
		}

		cfg, pol, err := Build(ConfWSRSRC512, 1)
		if err != nil {
			t.Fatal(err)
		}
		// No warmup: fuzzed programs may halt after a handful of
		// instructions, and an incomplete warmup window is the one
		// trace-end the pipeline treats as an error.
		ro := pipeline.RunOpts{MeasureInsts: 500, MaxCycles: 100_000}
		ro.Check = check.New(check.Config{
			Refs:       []check.RefSource{funcsim.New(prog, funcsim.NewMemory())},
			AuditEvery: 1000,
		})
		if _, err := pipeline.Run(cfg, pol, ent.Reader(), ro); err != nil {
			var v *check.Violation
			if errors.As(err, &v) && (v.Checker == "cycle-budget" || v.Checker == "watchdog") {
				// Arbitrary programs can construct the §2.3 rename
				// deadlock the paper itself documents; a budget stop
				// is not a replay bug.
				return
			}
			t.Fatalf("timing simulation of replayed stream failed: %v", err)
		}
	})
}
