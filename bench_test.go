package wsrs

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus the ablations listed in DESIGN.md §5. Each
// sub-benchmark runs a complete warm+measure simulation per iteration
// and reports the experiment's headline quantity (IPC, unbalancing
// degree, nanojoules, ...) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every number of the evaluation. EXPERIMENTS.md records
// a paper-vs-measured comparison produced with cmd/wsrsbench.

import (
	"fmt"
	"testing"

	"wsrs/internal/alloc"
	"wsrs/internal/cacti"
	"wsrs/internal/regfile"
	"wsrs/internal/trace"
)

// benchOpts keeps the full `-bench=.` sweep around a minute; use
// cmd/wsrsbench for longer paper-scale runs.
var benchOpts = SimOpts{WarmupInsts: 5_000, MeasureInsts: 20_000}

// BenchmarkTable1RegisterFile regenerates Table 1: the register-file
// complexity comparison of the five organizations. The reported
// metrics are the WSRS row's access time and energy.
func BenchmarkTable1RegisterFile(b *testing.B) {
	var rows []regfile.Row
	for i := 0; i < b.N; i++ {
		rows = regfile.Table1(cacti.Tech009(), regfile.PaperConfigs())
	}
	wsrsRow := rows[3]
	b.ReportMetric(wsrsRow.AccessNs, "WSRS-ns")
	b.ReportMetric(wsrsRow.EnergyNJ, "WSRS-nJ")
	b.ReportMetric(wsrsRow.AreaRel, "WSRS-relarea")
	b.ReportMetric(float64(wsrsRow.Bypass10GHz), "WSRS-bypass10")
}

// BenchmarkFigure4IPC regenerates Figure 4: IPC of every benchmark on
// every configuration (72 sub-benchmarks).
func BenchmarkFigure4IPC(b *testing.B) {
	for _, kernel := range Kernels() {
		for _, conf := range Figure4Configs() {
			kernel, conf := kernel, conf
			b.Run(fmt.Sprintf("%s/%s", kernel, conf), func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					res, err := RunKernel(conf, kernel, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					ipc = res.IPC
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkFigure5Unbalancing regenerates Figure 5: the §5.4.2
// unbalancing degree under the RC and RM policies.
func BenchmarkFigure5Unbalancing(b *testing.B) {
	for _, kernel := range Kernels() {
		for _, conf := range []ConfigName{ConfWSRSRC512, ConfWSRSRM512} {
			kernel, conf := kernel, conf
			b.Run(fmt.Sprintf("%s/%s", kernel, conf), func(b *testing.B) {
				var deg float64
				for i := 0; i < b.N; i++ {
					res, err := RunKernel(conf, kernel, benchOpts)
					if err != nil {
						b.Fatal(err)
					}
					deg = res.UnbalancingDegree
				}
				b.ReportMetric(deg, "unbal%")
			})
		}
	}
}

// BenchmarkAblationRenameImpl compares the two renaming
// implementations of §2.2 on the WSRS machine (§5.2.1 reports no
// significant difference; implementation 1 trades wasted registers
// for two fewer pipeline stages).
func BenchmarkAblationRenameImpl(b *testing.B) {
	cases := []struct {
		name string
		mods []MachineOption
	}{
		{"impl2-exact", nil},
		{"impl1-overpick", []MachineOption{WithRenameImpl1(3)}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelWith(ConfWSRSRC512, "gzip", benchOpts, "", c.mods...)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationRecycleDepth sweeps implementation 1's recycling
// pipeline depth: deeper pipelines keep more registers in flight and
// increase rename stalls (§2.2.1's "residual problem").
func BenchmarkAblationRecycleDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8, 16} {
		depth := depth
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelWith(ConfWSRSRC384, "crafty", benchOpts, "",
					WithRenameImpl1(depth))
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationRegisterSweep extends the paper's 384/512
// comparison: WSRS IPC as the physical register budget varies. The
// 256-register point has 64-register subsets (fewer than the 84
// renamable logical registers) and needs the §2.3 deadlock
// workaround.
func BenchmarkAblationRegisterSweep(b *testing.B) {
	for _, regs := range []int{256, 384, 512, 768} {
		regs := regs
		b.Run(fmt.Sprintf("regs-%d", regs), func(b *testing.B) {
			var ipc, moves float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelWith(ConfWSRSRC512, "gzip", benchOpts, "",
					WithRegisters(regs), WithDeadlockMoves())
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
				moves = float64(res.InjectedMoves)
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(moves, "moves")
		})
	}
}

// BenchmarkAblationXClusterDelay sweeps the inter-cluster forwarding
// delay (§4.3.1's fast-forwarding discussion): WSRS's locality
// advantage grows with the delay.
func BenchmarkAblationXClusterDelay(b *testing.B) {
	for _, d := range []int{0, 1, 2, 3} {
		for _, conf := range []ConfigName{ConfRR256, ConfWSRSRC512} {
			d, conf := d, conf
			b.Run(fmt.Sprintf("delay-%d/%s", d, conf), func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					res, err := RunKernelWith(conf, "gzip", benchOpts, "", WithXClusterDelay(d))
					if err != nil {
						b.Fatal(err)
					}
					ipc = res.IPC
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkAblationPolicy compares allocation policies on the WSRS
// machine, including the least-loaded RC-bal policy that previews the
// paper's future-work direction ("dynamic policies that trade off
// allocation of dependent instructions within a cluster and workload
// balancing").
func BenchmarkAblationPolicy(b *testing.B) {
	for _, pol := range []string{"RM", "RC", "RC-bal", "RC-dep"} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			var ipc, deg float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelWith(ConfWSRSRC512, "facerec", benchOpts, pol)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
				deg = res.UnbalancingDegree
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(deg, "unbal%")
		})
	}
}

// BenchmarkAblationPredictor bounds the branch-prediction cost: the
// paper's 512-Kbit 2Bc-gskew versus an oracle.
func BenchmarkAblationPredictor(b *testing.B) {
	cases := []struct {
		name string
		mods []MachineOption
	}{
		{"2bcgskew-512kbit", nil},
		{"oracle", []MachineOption{WithPerfectBP()}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelWith(ConfRR256, "vpr", benchOpts, "", c.mods...)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkSimulatorThroughput measures the timing model's own speed
// in simulated micro-ops per second on a synthetic stream.
func BenchmarkSimulatorThroughput(b *testing.B) {
	gen := trace.NewSynth(trace.DefaultSynthConfig())
	ops := make([]trace.MicroOp, 100_000)
	for i := range ops {
		ops[i], _ = gen.Next()
	}
	cfg, _, err := Build(ConfWSRSRC512, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		pol := alloc.NewRC(1)
		res, err := runPipeline(cfg, pol, ops)
		if err != nil {
			b.Fatal(err)
		}
		total += int(res.Uops)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "uops/s")
}

// BenchmarkAblationPools compares the two write-specialization
// organizations of Figure 2: four identical clusters (round-robin)
// versus pools of identical functional units (class-static
// allocation, §2.4's predecoded-bits case).
func BenchmarkAblationPools(b *testing.B) {
	for _, conf := range []ConfigName{ConfWSRR512, ConfWSPools512} {
		conf := conf
		b.Run(string(conf), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernel(conf, "gzip", benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationForwarding compares the three fast-forwarding
// hardware options of §4.3.1 on the WSRS machine and the conventional
// one. The paper argues WSRS placement makes restricted forwarding
// cheaper: with random distribution, two of four consumers of a
// result sit on the producer cluster (vs one of four conventionally)
// and three of four within the adjacent pair.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, fw := range []string{ForwardComplete, ForwardPairs, ForwardIntra} {
		for _, conf := range []ConfigName{ConfRR256, ConfWSRSRC512} {
			fw, conf := fw, conf
			b.Run(fmt.Sprintf("%s/%s", fw, conf), func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					res, err := RunKernelWith(conf, "galgel", benchOpts, "", WithForwarding(fw))
					if err != nil {
						b.Fatal(err)
					}
					ipc = res.IPC
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// BenchmarkSMTCoRun measures SMT co-runs on the WSRS machine — the
// §2.3 scenario where the combined architectural state of several
// contexts exceeds a register subset and the deadlock machinery
// becomes load-bearing.
func BenchmarkSMTCoRun(b *testing.B) {
	pairs := [][]string{
		{"gzip", "wupwise"},
		{"crafty", "mcf"},
		{"swim", "facerec"},
	}
	for _, pair := range pairs {
		pair := pair
		b.Run(fmt.Sprintf("%s+%s", pair[0], pair[1]), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := RunKernelSMT(ConfWSRSRC512, pair, benchOpts)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.IPC
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}
