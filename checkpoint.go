package wsrs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// cellKey identifies one grid cell for checkpoint resume. It covers
// everything that determines the cell's result and can be named: the
// cell's position and identity, the effective seed and the run
// windows. MachineOption modifiers are opaque functions, so only
// their count participates — callers changing a Mod in place should
// start a fresh checkpoint file.
func cellKey(index int, c GridCell, opts SimOpts) string {
	o := opts.withDefaults()
	seed := o.Seed
	if c.Seed != 0 {
		seed = c.Seed
	}
	key := fmt.Sprintf("%d|%s|%s|%s|%d|%d|%d|%d",
		index, c.Kernel, c.Config, c.Policy, len(c.Mods),
		o.WarmupInsts, o.MeasureInsts, seed)
	if c.ModsKey != "" {
		// Appended only when present so checkpoints written before
		// named mods existed keep resuming under their old keys.
		key += "|" + c.ModsKey
	}
	return key
}

// checkpointRecord is one finished cell, one JSON object per line.
type checkpointRecord struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
}

// checkpoint is the resume store behind SimOpts.Checkpoint: finished
// cells are appended as JSONL as they complete, and a later run over
// the same file restores them instead of re-simulating. Only
// successful cells are recorded — failures always re-run.
type checkpoint struct {
	mu   sync.Mutex
	done map[string]Result
	f    *os.File
}

// openCheckpoint loads an existing checkpoint file (tolerating a torn
// trailing line from an interrupted run) and opens it for appending.
func openCheckpoint(path string) (*checkpoint, error) {
	ck := &checkpoint{done: map[string]Result{}}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wsrs: checkpoint: %w", err)
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec checkpointRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			continue
		}
		ck.done[rec.Key] = rec.Result
	}
	ck.f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wsrs: checkpoint: %w", err)
	}
	return ck, nil
}

// lookup restores a previously recorded cell result.
func (c *checkpoint) lookup(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[key]
	return res, ok
}

// record appends one finished cell. Write errors are surfaced on
// close so a full disk does not fail an otherwise healthy grid
// mid-flight.
func (c *checkpoint) record(key string, res Result) {
	line, err := json.Marshal(checkpointRecord{Key: key, Result: res})
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = res
	c.f.Write(append(line, '\n'))
}

func (c *checkpoint) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
