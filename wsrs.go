// Package wsrs is a from-scratch reproduction of "Register Write
// Specialization Register Read Specialization: A Path to
// Complexity-Effective Wide-Issue Superscalar Processors" (Seznec,
// Toullec, Rochecouste — MICRO-35, 2002).
//
// The package exposes the paper's machinery through a small facade:
//
//   - Machine configurations: the six design points of Figure 4
//     (conventional RR-256, write-specialized WSRR-384/512 and
//     WSRS-RC/RM with 384/512 physical registers), built on a
//     cycle-level 8-way 4-cluster out-of-order timing model.
//   - Workloads: twelve SPEC CPU2000 proxy kernels (internal/kernels)
//     plus custom programs assembled from source (RunProgram).
//   - Complexity models: Table1 regenerates the paper's register-file
//     area / energy / access-time / bypass comparison.
//   - Experiments: Figure4 (IPC) and Figure5 (workload unbalancing
//     degree), plus the ablations described in DESIGN.md.
//
// Quick start:
//
//	res, err := wsrs.RunKernel(wsrs.ConfWSRSRC512, "gzip", wsrs.SimOpts{})
//	fmt.Printf("IPC = %.2f\n", res.IPC)
package wsrs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"wsrs/internal/alloc"
	"wsrs/internal/asm"
	"wsrs/internal/check"
	"wsrs/internal/check/inject"
	"wsrs/internal/cluster"
	"wsrs/internal/funcsim"
	"wsrs/internal/isa"
	"wsrs/internal/kernels"
	"wsrs/internal/mem"
	"wsrs/internal/pipeline"
	"wsrs/internal/probe"
	"wsrs/internal/rename"
	"wsrs/internal/telemetry"
	"wsrs/internal/trace"
)

// ConfigName identifies one of the paper's simulated configurations
// (§5.2.1 and Figure 4's legend).
type ConfigName string

// The six Figure 4 configurations.
const (
	// ConfRR256 is the conventional 4-cluster processor: round-robin
	// allocation, 256 physical registers, 17-cycle minimum
	// misprediction penalty.
	ConfRR256 ConfigName = "RR 256"
	// ConfWSRR384 / ConfWSRR512 use register Write Specialization
	// alone with round-robin allocation (second renaming
	// implementation, 16-cycle penalty: the register read pipeline is
	// one cycle shorter).
	ConfWSRR384 ConfigName = "WSRR 384"
	ConfWSRR512 ConfigName = "WSRR 512"
	// ConfWSRSRC384 / ConfWSRSRC512 are 4-cluster WSRS machines with
	// the "random commutative cluster" policy and the second renaming
	// implementation (18-cycle penalty).
	ConfWSRSRC384 ConfigName = "WSRS RC S 384"
	ConfWSRSRC512 ConfigName = "WSRS RC S 512"
	// ConfWSRSRM512 uses the "random monadic" policy.
	ConfWSRSRM512 ConfigName = "WSRS RM S 512"

	// ConfWSPools512 is the second write-specialization organization
	// of paper Figure 2b: heterogeneous pools of identical functional
	// units (load/store, simple ALU, complex, branch), each fed by
	// dedicated reservation stations and writing its own register
	// subset. Pool allocation is class-static ("predecoded bits in
	// the instruction cache", §2.4), so renaming needs no extra
	// stages (16-cycle penalty). Not part of Figure 4; provided as an
	// extension experiment.
	ConfWSPools512 ConfigName = "WS pools 512"
)

// Figure4Configs returns the six configuration names in the paper's
// legend order.
func Figure4Configs() []ConfigName {
	return []ConfigName{
		ConfRR256, ConfWSRR384, ConfWSRR512,
		ConfWSRSRC384, ConfWSRSRC512, ConfWSRSRM512,
	}
}

// AllConfigs returns every buildable configuration name: the Figure 4
// set plus the pools extension.
func AllConfigs() []ConfigName {
	return append(Figure4Configs(), ConfWSPools512)
}

// PolicyNames returns the allocation-policy names NewPolicy accepts.
func PolicyNames() []string {
	return []string{"RR", "RM", "RC", "RC-bal", "RC-dep", "RR-aff"}
}

// ValidateConfigName resolves a configuration name, returning an error
// that lists the valid choices on a miss. The command-line tools call
// it up front so a typo fails before any simulation runs.
func ValidateConfigName(name string) (ConfigName, error) {
	for _, c := range AllConfigs() {
		if string(c) == name {
			return c, nil
		}
	}
	valid := make([]string, 0, len(AllConfigs()))
	for _, c := range AllConfigs() {
		valid = append(valid, string(c))
	}
	return "", fmt.Errorf("wsrs: unknown configuration %q (valid: %s)",
		name, strings.Join(valid, ", "))
}

// ValidateKernelNames checks a list of benchmark names against the
// registered kernels, so a typo fails up front — before any grid
// starts — instead of mid-run from inside a worker. The grid drivers
// (RunFigure4, RunFigure5, RunEnergy, RunKernelSeeds) and the serving
// layer all call it before building cells.
func ValidateKernelNames(names []string) error {
	valid := map[string]bool{}
	for _, k := range kernels.Names() {
		valid[k] = true
	}
	for _, name := range names {
		if !valid[name] {
			return fmt.Errorf("wsrs: unknown kernel %q (valid: %s)",
				name, strings.Join(kernels.Names(), ", "))
		}
	}
	return nil
}

// ValidatePolicyName checks an allocation-policy name ("" means "keep
// the configuration's own policy" and is always valid).
func ValidatePolicyName(name string) error {
	if name == "" {
		return nil
	}
	for _, p := range PolicyNames() {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("wsrs: unknown policy %q (valid: %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// DefaultLatencies re-exports the paper's Table 2 latencies.
func DefaultLatencies() isa.Latencies { return isa.DefaultLatencies() }

// DefaultMemory re-exports the paper's Table 3 memory hierarchy.
func DefaultMemory() mem.Config { return mem.DefaultConfig() }

// baseConfig is the machine frame shared by every configuration:
// 8-way 4-cluster, 224-entry window, Table 2 latencies, Table 3
// memory, 512-Kbit 2Bc-gskew predictor.
func baseConfig(name string) pipeline.Config {
	return pipeline.Config{
		Name:             name,
		FetchWidth:       8,
		CommitWidth:      8,
		NumClusters:      4,
		ROBSize:          224,
		Cluster:          cluster.DefaultConfig(),
		XClusterDelay:    1,
		TrapPenalty:      17,
		Lat:              isa.DefaultLatencies(),
		Mem:              mem.DefaultConfig(),
		PredictorLogSize: 16,
	}
}

// Build returns the pipeline configuration and a fresh allocation
// policy for a named configuration. Policies embedding randomness are
// seeded with seed for reproducibility.
func Build(name ConfigName, seed int64) (pipeline.Config, alloc.Policy, error) {
	cfg := baseConfig(string(name))
	switch name {
	case ConfRR256:
		cfg.Rename = rename.Config{NumSubsets: 1, IntRegs: 256, FPRegs: 256, Impl: rename.ImplExactCount}
		cfg.MispredictPenalty = 17
		return cfg, alloc.NewRoundRobin(4), nil
	case ConfWSRR384, ConfWSRR512:
		regs := 384
		if name == ConfWSRR512 {
			regs = 512
		}
		cfg.Rename = rename.Config{NumSubsets: 4, IntRegs: regs, FPRegs: regs, Impl: rename.ImplExactCount}
		cfg.MispredictPenalty = 16
		return cfg, alloc.NewRoundRobin(4), nil
	case ConfWSPools512:
		cfg.Rename = rename.Config{NumSubsets: 4, IntRegs: 512, FPRegs: 512, Impl: rename.ImplExactCount}
		cfg.MispredictPenalty = 16
		cfg.ClusterConfigs = poolConfigs()
		return cfg, alloc.NewClassPools(), nil
	case ConfWSRSRC384, ConfWSRSRC512, ConfWSRSRM512:
		regs := 384
		if name != ConfWSRSRC384 {
			regs = 512
		}
		cfg.Rename = rename.Config{NumSubsets: 4, IntRegs: regs, FPRegs: regs, Impl: rename.ImplExactCount}
		cfg.WSRS = true
		cfg.MispredictPenalty = 18 // second renaming implementation ("S")
		if name == ConfWSRSRM512 {
			return cfg, alloc.NewRM(seed), nil
		}
		return cfg, alloc.NewRC(seed), nil
	}
	return pipeline.Config{}, nil, fmt.Errorf("wsrs: unknown configuration %q", name)
}

// poolConfigs sizes the Figure 2b pools to the same aggregate
// resources as the 4-identical-cluster machine: 3 load/store units,
// 4 simple ALUs, a complex pool (2 multiply/divide-capable ALUs + 2
// FPUs) and 2 branch units. Write ports per subset stay at 3 or
// fewer, preserving the WS register file of Table 1.
func poolConfigs() []cluster.Config {
	return []cluster.Config{
		alloc.PoolLdSt:    {IssueWidth: 3, NumLSU: 3, IQSize: 56, MaxInflight: 56, WritePorts: 3},
		alloc.PoolALU:     {IssueWidth: 4, NumALU: 4, IQSize: 56, MaxInflight: 56, WritePorts: 3},
		alloc.PoolComplex: {IssueWidth: 2, NumALU: 2, NumFPU: 2, IQSize: 56, MaxInflight: 56, WritePorts: 3},
		alloc.PoolBranch:  {IssueWidth: 2, NumALU: 2, IQSize: 56, MaxInflight: 56, WritePorts: 2},
	}
}

// SimOpts bounds a simulation run. Zero values select the defaults
// used throughout the test suite (a scaled-down version of the
// paper's 20 M-warm / 10 M-measured protocol).
type SimOpts struct {
	WarmupInsts  uint64 // default 20 000
	MeasureInsts uint64 // default 60 000
	Seed         int64  // allocation-policy seed, default 1

	// Parallelism bounds the worker pool used by the grid-shaped
	// drivers (RunFigure4, RunFigure5, RunKernelSeeds): 0 selects
	// GOMAXPROCS, 1 restores the strictly serial harness. Individual
	// RunKernel calls are unaffected. Results are deterministic at
	// any setting (see RunGrid).
	Parallelism int

	// Probe attaches an observability probe (lifecycle events, stall
	// stack, occupancy histograms) to the run. Nil keeps every probe
	// branch off the hot path. A probe must not be shared between
	// concurrent simulations, so the grid drivers reject it — use
	// Stats to get per-cell stall stacks from a grid.
	Probe *Probe

	// Stats gives every grid cell its own private stall-stack probe;
	// the result travels in Result.Stalls. Safe at any parallelism.
	Stats bool

	// Telemetry gives every run (grid cell or single RunKernel) its
	// own private dynamic activity-counter block; the counts travel in
	// Result.Activity, ready for EnergyModelFor pricing. Counting is
	// pure observation: a telemetry-enabled run is cycle-identical to
	// a plain one. Safe at any parallelism.
	Telemetry bool

	// Observer receives RunGrid progress callbacks (cell started /
	// finished) from the worker goroutines; nil disables them.
	// GridTelemetry is the batteries-included implementation
	// (progress lines, Prometheus metrics, run manifest, host trace).
	Observer GridObserver

	// Check enables the self-checking layer: a co-simulation oracle (a
	// fresh functional reference diffed against every retired µop),
	// per-commit write/read-specialization legality checks, and
	// periodic structural audits (free-list conservation with exact
	// per-register accounting, ROB commit order, wakeup-table
	// consistency). Checkers are read-only observers — a checked run
	// is cycle-identical to an unchecked one. Failures surface as a
	// *CheckViolation error.
	Check bool
	// AuditEvery overrides the structural-audit cadence in cycles (0
	// selects the checker default of 1024; negative disables the
	// audits). Only meaningful with Check or Inject set.
	AuditEvery int64
	// Watchdog overrides the forward-progress window in cycles: a run
	// that commits nothing for this long fails with a "watchdog"
	// CheckViolation carrying a diagnostic dump of the stuck machine
	// (0 selects the pipeline default of 200 000). Active even
	// without Check.
	Watchdog int64
	// MaxCycles bounds each run in simulated cycles; exceeding it
	// fails the run with a "cycle-budget" CheckViolation (0 =
	// unbounded).
	MaxCycles int64
	// CellTimeout bounds each run in host wall-clock time; exceeding
	// it fails the run with a "time-budget" CheckViolation (0 =
	// unbounded). In a grid the budget is per cell.
	CellTimeout time.Duration
	// Cancel aborts in-flight simulation work once the channel closes
	// (nil = never): the run returns an error satisfying
	// errors.Is(err, context.Canceled) within microseconds. Wire a
	// context's Done channel here to make a grid cancelable — the
	// serving layer uses it so DELETE /v1/jobs/{id} stops a running
	// cell instead of letting it simulate to completion.
	Cancel <-chan struct{}
	// Checkpoint names a JSONL file RunGrid uses to persist finished
	// cells: a re-run with the same file skips cells already recorded
	// (marking them Resumed) and appends newly finished ones, so an
	// interrupted grid resumes where it stopped. Failed cells are
	// never recorded and re-run.
	Checkpoint string
	// Inject schedules one deliberate fault (see ParseFault). It
	// implies Check, so the checker guarding the corrupted structure
	// can catch it. A Fault is single-shot state shared with the
	// caller (its Applied method reports what happened), so RunGrid
	// rejects it — inject into individual runs.
	Inject *Fault
}

func (o SimOpts) withDefaults() SimOpts {
	if o.WarmupInsts == 0 {
		o.WarmupInsts = 20_000
	}
	if o.MeasureInsts == 0 {
		o.MeasureInsts = 60_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// checking reports whether the self-checking layer must be built.
func (o SimOpts) checking() bool { return o.Check || o.Inject != nil }

// runOpts translates the facade options into pipeline bounds; the
// checker, when any, is attached by the caller.
func (o SimOpts) runOpts() pipeline.RunOpts {
	ro := pipeline.RunOpts{
		WarmupInsts:  o.WarmupInsts,
		MeasureInsts: o.MeasureInsts,
		Probe:        o.Probe,
		StallLimit:   o.Watchdog,
		MaxCycles:    o.MaxCycles,
		Cancel:       o.Cancel,
	}
	if o.Telemetry {
		// A fresh private block per run, so grids stay safe at any
		// parallelism; it travels out in Result.Activity.
		ro.Activity = telemetry.NewActivity()
	}
	if o.CellTimeout > 0 {
		ro.Deadline = time.Now().Add(o.CellTimeout)
	}
	return ro
}

// newChecker assembles the self-checking layer over the given
// per-context reference streams.
func (o SimOpts) newChecker(refs []check.RefSource) *check.Checker {
	return check.New(check.Config{Refs: refs, AuditEvery: o.AuditEvery, Fault: o.Inject})
}

// Result is the outcome of one simulation (re-exported from the
// timing model).
type Result = pipeline.Result

// CheckViolation is the error every checker reports (re-exported from
// internal/check): which checker fired ("oracle", "conservation",
// "rob-order", "wakeup", "ws-legal", "rs-legal", "watchdog",
// "cycle-budget", "time-budget"), at which cycle, a one-line verdict
// and an optional multi-line diagnostic dump. Unwrap with errors.As.
type CheckViolation = check.Violation

// Fault is one scheduled fault injection (re-exported from
// internal/check/inject): a fault class and an arming cycle. After a
// run, its Applied method reports whether — and what — it corrupted.
type Fault = inject.Fault

// ParseFault reads a fault specification of the form "kind@cycle",
// e.g. "map@5000"; see FaultKinds for the classes.
func ParseFault(s string) (*Fault, error) { return inject.Parse(s) }

// FaultKinds returns the fault-class names ParseFault accepts: "map"
// (flip a rename-map entry), "leak" (lose a free register), "dup"
// (double-book a mapped register), "wakeup" (drop a result
// broadcast), "stream" (corrupt a committed µop's annotations).
func FaultKinds() []string {
	kinds := inject.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = string(k)
	}
	return out
}

// Probe, ProbeOptions, StallStack and StallCause re-export the
// observability layer (internal/probe) so command-line tools and
// experiments can request traces without importing internal packages.
type (
	Probe        = probe.Probe
	ProbeOptions = probe.Options
	StallStack   = probe.StallStack
	StallCause   = probe.Cause
)

// NewProbe builds an observability probe; attach it via SimOpts.Probe.
func NewProbe(o ProbeOptions) *Probe { return probe.New(o) }

// UopRecord is one recorded µop lifecycle (re-exported).
type UopRecord = probe.UopRecord

// Activity, EnergyModel, EnergyStack, Registry and TraceEvent
// re-export the dynamic telemetry layer (internal/telemetry): the
// per-run activity-counter block, the per-event energy prices and the
// priced energy stack, the Prometheus-exposable metric registry, and
// Chrome trace-event records.
type (
	Activity    = telemetry.Activity
	EnergyModel = telemetry.EnergyModel
	EnergyStack = telemetry.EnergyStack
	Registry    = telemetry.Registry
	TraceEvent  = telemetry.TraceEvent
)

// NewRegistry builds an empty metric registry (see Registry).
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// WriteTrace writes Chrome trace-event JSON loadable in Perfetto.
func WriteTrace(w io.Writer, events []TraceEvent) error { return telemetry.WriteTrace(w, events) }

// PipelineTrace converts probed µop lifecycle records into Chrome
// trace slices (one track per cluster, one process per SMT context).
func PipelineTrace(recs []UopRecord) []TraceEvent { return telemetry.PipelineTrace(recs) }

// WriteJSONL exports lifecycle records as one JSON object per line.
func WriteJSONL(w io.Writer, recs []UopRecord) error { return probe.WriteJSONL(w, recs) }

// WritePipeview renders lifecycle records as a text pipeline timeline.
func WritePipeview(w io.Writer, recs []UopRecord) error { return probe.WritePipeview(w, recs) }

// RunKernel simulates the named benchmark kernel on the named
// configuration. The kernel's functional simulation is memoized in
// the shared trace cache: repeated runs (other configurations, other
// seeds) replay the same annotated stream.
func RunKernel(conf ConfigName, kernel string, opts SimOpts) (Result, error) {
	return runCell(GridCell{Kernel: kernel, Config: conf}, opts)
}

// Kernels returns the names of the twelve SPEC proxy kernels in
// Figure 4 order.
func Kernels() []string { return kernels.Names() }

// IntKernels and FPKernels return the Figure 4 benchmark groups.
func IntKernels() []string { return names(kernels.Integers()) }

// FPKernels returns the floating-point benchmark names.
func FPKernels() []string { return names(kernels.Floats()) }

func names(ks []kernels.Kernel) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// RunProgram assembles source, initializes memory via init (which may
// be nil), and simulates it on the named configuration until it halts
// or opts' instruction budget is exhausted.
func RunProgram(conf ConfigName, source string, init func(*funcsim.Memory), opts SimOpts) (Result, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return Result{}, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cfg, pol, err := Build(conf, opts.Seed)
	if err != nil {
		return Result{}, err
	}
	m := funcsim.NewMemory()
	if init != nil {
		init(m)
	}
	sim := funcsim.New(prog, m)
	ro := opts.runOpts()
	if opts.checking() {
		// The oracle replays an independent functional simulation of
		// the same program over identically initialized memory.
		rm := funcsim.NewMemory()
		if init != nil {
			init(rm)
		}
		ro.Check = opts.newChecker([]check.RefSource{funcsim.New(prog, rm)})
	}
	res, err := pipeline.Run(cfg, pol, sim, ro)
	if err != nil {
		return res, err
	}
	return res, sim.Err()
}

// Trace exposes the annotated dynamic micro-op stream of a kernel for
// custom experiments (the first n micro-ops). The stream comes from
// the shared trace cache; the returned slice is the caller's to
// mutate.
func Trace(kernel string, n int) ([]trace.MicroOp, error) {
	cur, err := kernelReader(kernel)
	if err != nil {
		return nil, err
	}
	ops := make([]trace.MicroOp, 0, n)
	for i := 0; i < n; i++ {
		m, ok := cur.Next()
		if !ok {
			break
		}
		ops = append(ops, m)
	}
	return ops, cur.Err()
}

// runPipeline runs a pre-collected micro-op slice through the timing
// model (used by the throughput benchmark and examples).
func runPipeline(cfg pipeline.Config, pol alloc.Policy, ops []trace.MicroOp) (Result, error) {
	return pipeline.Run(cfg, pol, trace.NewSliceReader(ops), pipeline.RunOpts{})
}

// RunKernelSMT simulates several SMT hardware contexts, one benchmark
// kernel per context, sharing the machine (paper §2.3 flags SMT as
// the scenario where register subsets realistically hold fewer
// registers than the combined logical state — making the deadlock
// workarounds load-bearing; they are enabled here).
func RunKernelSMT(conf ConfigName, kernelNames []string, opts SimOpts) (Result, error) {
	if len(kernelNames) < 1 {
		return Result{}, fmt.Errorf("wsrs: need at least one context")
	}
	opts = opts.withDefaults()
	cfg, pol, err := Build(conf, opts.Seed)
	if err != nil {
		return Result{}, err
	}
	cfg.Threads = len(kernelNames)
	cfg.DeadlockMoves = true
	var srcs []trace.Reader
	for _, name := range kernelNames {
		cur, err := kernelReader(name)
		if err != nil {
			return Result{}, err
		}
		srcs = append(srcs, cur)
	}
	ro := opts.runOpts()
	if opts.checking() {
		// One independent reference stream per hardware context; the
		// oracle re-applies the private-address-space offset itself.
		refs := make([]check.RefSource, len(kernelNames))
		for i, name := range kernelNames {
			ref, err := kernelRef(name)
			if err != nil {
				return Result{}, err
			}
			refs[i] = ref
		}
		ro.Check = opts.newChecker(refs)
	}
	return pipeline.RunSMT(cfg, pol, srcs, ro)
}
