// customkernel shows the full path for running your own program on
// the simulated machines: write assembly, initialize memory from Go,
// then simulate it on several configurations. The example program is
// a binary search over a sorted table — dependent loads with
// hard-to-predict direction branches, a classic microarchitecture
// stress test.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wsrs"
	"wsrs/internal/funcsim"
)

const (
	tableBase = 0x10_0000
	tableLen  = 64 * 1024 // 512 KB sorted table: L2-resident
	keysBase  = 0x80_0000
	keysLen   = 4096
)

// The kernel binary-searches each key of a query stream; %g1 holds
// the table base, %g4 the key-stream bound.
const source = `
	li   %g1, 0x100000   ; table base
	li   %g4, 0x807fe0   ; key stream end
	li   %l6, 0          ; hits
	li   %l7, 0x800000   ; key pointer
outer:
	ld   %o7, [%l7+0]    ; key
	li   %o0, 0          ; lo (index)
	li   %o1, 65536      ; hi
search:
	sub  %o2, %o1, %o0
	ble  %o2, %g0, miss  ; empty range
	srl  %o3, %o2, 1
	add  %o3, %o0, %o3   ; mid
	sll  %o4, %o3, 3
	add  %o4, %o4, %g1
	ld   %o5, [%o4+0]    ; table[mid]: dependent, irregular load
	beq  %o5, %o7, hit
	blt  %o5, %o7, right
	mov  %o1, %o3        ; hi = mid
	ba   search
right:
	add  %o0, %o3, 1     ; lo = mid+1
	ba   search
hit:
	add  %l6, %l6, 1
miss:
	add  %l7, %l7, 8
	blt  %l7, %g4, outer
	li   %l7, 0x800000
	ba   outer
`

func initMemory(m *funcsim.Memory) {
	// Sorted table with gaps so ~half the searches miss.
	v := int64(0)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < tableLen; i++ {
		v += int64(1 + rng.Intn(3))
		m.WriteInt64(tableBase+uint64(8*i), v)
	}
	for i := 0; i < keysLen; i++ {
		m.WriteInt64(keysBase+uint64(8*i), int64(rng.Intn(int(v))))
	}
}

func main() {
	opts := wsrs.SimOpts{WarmupInsts: 10_000, MeasureInsts: 60_000}
	fmt.Println("binary search over a 512 KB sorted table:")
	for _, conf := range []wsrs.ConfigName{wsrs.ConfRR256, wsrs.ConfWSRR512, wsrs.ConfWSRSRC512} {
		res, err := wsrs.RunProgram(conf, source, initMemory, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s IPC %.2f   mispredicts %.1f%%   L1 hit %.1f%%   unbalancing %.0f%%\n",
			conf, res.IPC, 100*res.MispredictRate, 100*res.Mem.L1HitRate(), res.UnbalancingDegree)
	}
}
