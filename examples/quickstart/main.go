// Quickstart: simulate one benchmark on the conventional machine and
// on the 4-cluster WSRS machine, and compare — the paper's headline
// performance claim ("the 4-cluster WSRS architecture stands the
// performance comparison with a conventional 4-cluster architecture")
// in a dozen lines.
package main

import (
	"fmt"
	"log"

	"wsrs"
)

func main() {
	opts := wsrs.SimOpts{WarmupInsts: 20_000, MeasureInsts: 100_000}

	conv, err := wsrs.RunKernel(wsrs.ConfRR256, "gzip", opts)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := wsrs.RunKernel(wsrs.ConfWSRSRC512, "gzip", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gzip on the conventional 8-way 4-cluster machine: IPC %.2f\n", conv.IPC)
	fmt.Printf("gzip on the 8-way 4-cluster WSRS machine:        IPC %.2f (%+.1f%%)\n",
		spec.IPC, 100*(spec.IPC/conv.IPC-1))
	fmt.Println()
	fmt.Printf("WSRS cluster loads: %v (unbalancing degree %.1f%%)\n",
		spec.ClusterLoads, spec.UnbalancingDegree)
	fmt.Println()
	fmt.Println("...while the WSRS register file needs 1/6 the silicon and its")
	fmt.Println("bypass points arbitrate as few sources as a 4-way machine's:")
	for _, row := range wsrs.Table1() {
		fmt.Printf("  %-7s access %.3f ns, %.2f nJ/cycle, relative area %.2fx, %d bypass sources\n",
			row.Org.Name, row.AccessNs, row.EnergyNJ, row.AreaRel, row.Bypass10GHz)
	}
}
