// pools contrasts the two register-write-specialization organizations
// of the paper's Figure 2: (a) four identical execution clusters with
// round-robin allocation, and (b) pools of identical functional units
// (load/store, simple ALU, complex, branch), each fed by dedicated
// reservation stations and writing its own register subset, with
// class-static allocation known at predecode time (§2.4).
package main

import (
	"fmt"
	"log"
	"os"

	"wsrs"
	"wsrs/internal/report"
)

func main() {
	opts := wsrs.SimOpts{WarmupInsts: 15_000, MeasureInsts: 60_000}

	t := report.NewTable("Figure 2a (identical clusters) vs Figure 2b (pools of FUs)",
		"benchmark", "WSRR 512 IPC", "WS pools 512 IPC", "pools per-pool loads (ld/st, alu, cplx, br)")
	for _, k := range wsrs.Kernels() {
		cl, err := wsrs.RunKernel(wsrs.ConfWSRR512, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		po, err := wsrs.RunKernel(wsrs.ConfWSPools512, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(k, cl.IPC, po.IPC, fmt.Sprintf("%v", po.ClusterLoads))
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Pools win when the class mix matches their capacity (memory- and")
	fmt.Println("fp-bound codes) and lose when one class saturates a single pool")
	fmt.Println("(ALU-bound crafty). Either way each physical register keeps the")
	fmt.Println("small (4R,3W) cell of Table 1 — write specialization is what")
	fmt.Println("shrinks the register file, regardless of organization.")
}
