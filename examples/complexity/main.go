// complexity explores the register-file complexity models beyond the
// paper's Table 1 design points: how the five organizations' access
// time, energy and area scale with physical register count, and where
// the WSRS organization's advantage comes from (fewer write ports,
// fewer copies, shorter banks).
package main

import (
	"fmt"
	"os"

	"wsrs/internal/bypass"
	"wsrs/internal/cacti"
	"wsrs/internal/regfile"
	"wsrs/internal/report"
	"wsrs/internal/wakeup"
)

func main() {
	tech := cacti.Tech009()

	// Sweep the register budget for each organization.
	t := report.NewTable("Access time (ns) vs total physical registers (0.09µm)",
		"registers", "noWS-M", "noWS-D", "WS", "WSRS", "noWS-2")
	for _, n := range []int{128, 256, 512, 1024} {
		t.AddRow(n,
			ns(regfile.NoWSMono(n).AccessTimeNs(tech)),
			ns(regfile.NoWSDistributed(n).AccessTimeNs(tech)),
			ns(regfile.WS(n).AccessTimeNs(tech)),
			ns(regfile.WSRS(n).AccessTimeNs(tech)),
			ns(regfile.NoWS2(n).AccessTimeNs(tech)))
	}
	t.Render(os.Stdout)
	fmt.Println()

	e := report.NewTable("Peak energy (nJ/cycle) vs total physical registers",
		"registers", "noWS-M", "noWS-D", "WS", "WSRS", "noWS-2")
	for _, n := range []int{128, 256, 512, 1024} {
		e.AddRow(n,
			regfile.NoWSMono(n).EnergyPerCycleNJ(tech),
			regfile.NoWSDistributed(n).EnergyPerCycleNJ(tech),
			regfile.WS(n).EnergyPerCycleNJ(tech),
			regfile.WSRS(n).EnergyPerCycleNJ(tech),
			regfile.NoWS2(n).EnergyPerCycleNJ(tech))
	}
	e.Render(os.Stdout)
	fmt.Println()

	// Decompose the WSRS advantage at the paper's design point.
	d := regfile.NoWSDistributed(256)
	w := regfile.WSRS(512)
	fmt.Println("Where the WSRS register file advantage comes from (vs noWS-D):")
	fmt.Printf("  write ports per copy: %d -> %d  (write specialization)\n", d.WritePorts, w.WritePorts)
	fmt.Printf("  copies per register:  %d -> %d  (read specialization)\n", d.Copies, w.Copies)
	fmt.Printf("  registers per bank:   %d -> %d  (per-subset banks)\n", d.BankRegs, w.BankRegs)
	fmt.Printf("  bit cell area:        %dw² -> %dw²  (Formula 1)\n", d.BitArea(), w.BitArea())
	fmt.Printf("  total area ratio:     %.1fx smaller despite 2x the registers\n", d.TotalAreaRel(w))
	fmt.Println()

	// The wake-up / bypass headline (§4.3).
	fmt.Println("Wake-up and bypass complexity (10 GHz):")
	for _, r := range regfile.Table1(tech, regfile.PaperConfigs()) {
		fmt.Printf("  %-7s %2d wake-up comparators/entry, %3d bypass sources\n",
			r.Org.Name, regfile.WakeupComparators(r.Org.ResultProducers), r.Bypass10GHz)
	}
	fmt.Println("  (the 8-way WSRS machine matches the conventional 4-way, the")
	fmt.Println("   paper's §4.3 headline)")
	fmt.Println()

	// Wake-up response time and energy (§4.3.2, Palacharla-calibrated).
	fmt.Println("Wake-up logic response time / energy (relative):")
	for _, d := range wakeup.PaperDesigns() {
		fmt.Printf("  %s\n", wakeup.Evaluate(d))
	}
	fmt.Println()

	// Bypass point structure (§4.3.1) at 10 GHz.
	fmt.Println("Bypass points (10 GHz pipeline depths):")
	for _, p := range bypass.PaperPoints() {
		fmt.Printf("  %s\n", p)
	}
}

func ns(v float64) string { return fmt.Sprintf("%.3f", v) }
