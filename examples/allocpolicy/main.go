// allocpolicy compares the WSRS cluster-allocation policies of the
// paper (§3.3, §5.2.1) — RM, RC — against round-robin on the
// conventional machine and against the least-loaded "RC-bal" policy
// that previews the paper's future-work direction, across the whole
// benchmark suite. It prints IPC and the §5.4.2 unbalancing degree
// side by side, making the balance-versus-locality trade-off visible.
package main

import (
	"fmt"
	"log"
	"os"

	"wsrs"
	"wsrs/internal/report"
)

func main() {
	opts := wsrs.SimOpts{WarmupInsts: 15_000, MeasureInsts: 60_000}

	t := report.NewTable("Cluster allocation policies (IPC | unbalancing %)",
		"benchmark", "RR (conv)", "WSRS RM", "WSRS RC", "WSRS RC-bal")
	for _, k := range wsrs.Kernels() {
		rr, err := wsrs.RunKernel(wsrs.ConfRR256, k, opts)
		if err != nil {
			log.Fatal(err)
		}
		cell := func(policy string) string {
			res, err := wsrs.RunKernelWith(wsrs.ConfWSRSRC512, k, opts, policy)
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("%.2f | %4.1f", res.IPC, res.UnbalancingDegree)
		}
		t.AddRow(k, fmt.Sprintf("%.2f |  0.0", rr.IPC), cell("RM"), cell("RC"), cell("RC-bal"))
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("RM uses only the monadic degree of freedom; RC adds two-form")
	fmt.Println("(commutative-cluster) execution; RC-bal picks the least-loaded")
	fmt.Println("allowed cluster — the dynamic policy direction of the paper's")
	fmt.Println("future work, §5.4.2.")
}
