package wsrs

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// The differential suite locks the allocation-free core down from the
// outside: every observation layer (probe, stats, self-check,
// telemetry) must be invisible to the timing model, engine re-use
// through the sync.Pool must be invisible to repeated runs, and the
// headline statistics of the whole kernel × configuration grid are
// pinned byte-for-byte in testdata/differential.golden. A change that
// perturbs any cycle count anywhere in the machine shows up as a
// golden diff; a change that makes any observer non-neutral shows up
// as a mode mismatch.

// diffOpts keeps the sweep fast; like goldenOpts, everything feeding
// the comparisons is deterministic at a fixed seed.
var diffOpts = SimOpts{WarmupInsts: 1000, MeasureInsts: 4000, Seed: 1}

// stripObservers drops the observation payloads (present only in the
// modes that request them) so Results can be compared structurally.
func stripObservers(r Result) Result {
	r.Stalls = nil
	r.Activity = nil
	return r
}

// diffModes are the observation variants every swept cell must agree
// across. "plain2" re-runs plain so each cell also exercises engine
// re-use from the pool against its own first run.
var diffModes = []struct {
	name string
	mod  func(*SimOpts)
}{
	{"plain", func(*SimOpts) {}},
	{"plain2", func(*SimOpts) {}},
	{"stats", func(o *SimOpts) { o.Stats = true }},
	{"probe", func(o *SimOpts) { o.Probe = NewProbe(ProbeOptions{Events: true, Stalls: true, Occupancy: true}) }},
	{"check", func(o *SimOpts) { o.Check = true }},
	{"telemetry", func(o *SimOpts) { o.Telemetry = true }},
	{"all", func(o *SimOpts) { o.Stats, o.Check, o.Telemetry = true, true, true }},
}

// TestDifferentialGrid sweeps every kernel × configuration cell,
// asserts mode-invariance, and pins the plain results in a golden
// file.
func TestDifferentialGrid(t *testing.T) {
	var buf bytes.Buffer
	for _, kernel := range Kernels() {
		for _, conf := range AllConfigs() {
			base, err := RunKernel(conf, kernel, diffOpts)
			if err != nil {
				t.Fatalf("%s/%s: %v", kernel, conf, err)
			}
			// The full mode sweep is run on a three-kernel cross
			// section (integer, pointer-chasing, floating-point);
			// the remaining cells check the strongest two modes.
			modes := diffModes
			switch kernel {
			case "gzip", "mcf", "wupwise":
			default:
				modes = modes[:0:0]
				modes = append(modes, diffModes[1], diffModes[4], diffModes[6])
			}
			for _, m := range modes {
				opts := diffOpts
				m.mod(&opts)
				got, err := RunKernel(conf, kernel, opts)
				if err != nil {
					t.Fatalf("%s/%s [%s]: %v", kernel, conf, m.name, err)
				}
				if opts.Stats && got.Stalls == nil {
					t.Errorf("%s/%s [%s]: stats mode returned no stall stack", kernel, conf, m.name)
				}
				if opts.Telemetry && got.Activity == nil {
					t.Errorf("%s/%s [%s]: telemetry mode returned no activity block", kernel, conf, m.name)
				}
				if !reflect.DeepEqual(stripObservers(got), stripObservers(base)) {
					t.Errorf("%s/%s [%s]: result differs from plain run\n got: %+v\nwant: %+v",
						kernel, conf, m.name, stripObservers(got), stripObservers(base))
				}
			}
			fmt.Fprintf(&buf, "%-10s | %-13s | cycles %7d | uops %6d | insts %6d | mispred %5d | stalls %6d/%6d/%6d\n",
				kernel, conf, base.Cycles, base.Uops, base.Insts, base.Mispredicts,
				base.StallRedirect, base.StallRename, base.StallWindow)
		}
	}
	checkGolden(t, "differential.golden", buf.Bytes())
}

// TestDifferentialPolicySeeds crosses every allocation policy with
// several seeds on the 512-register WSRS machine and asserts the
// checked and telemetry-enabled runs are identical to the plain ones.
// Seeded policies draw from their own RNG only, so cycle identity
// must hold at every seed.
func TestDifferentialPolicySeeds(t *testing.T) {
	for _, policy := range PolicyNames() {
		// Round-robin ignores operand subsets, so it is only legal on
		// the non-read-specialized machine; the WSRS-aware policies
		// sweep the WSRS machine.
		conf := ConfWSRSRC512
		if policy == "RR" {
			conf = ConfWSRR512
		}
		for _, seed := range []int64{1, 7, 42} {
			cell := GridCell{Kernel: "gzip", Config: conf, Policy: policy, Seed: seed}
			opts := diffOpts
			base, err := RunGrid([]GridCell{cell}, opts, 1)
			if err != nil {
				t.Fatalf("%s seed %d: %v", policy, seed, err)
			}
			for _, m := range []struct {
				name string
				mod  func(*SimOpts)
			}{
				{"check", func(o *SimOpts) { o.Check = true }},
				{"telemetry", func(o *SimOpts) { o.Telemetry = true }},
			} {
				mo := diffOpts
				m.mod(&mo)
				got, err := RunGrid([]GridCell{cell}, mo, 1)
				if err != nil {
					t.Fatalf("%s seed %d [%s]: %v", policy, seed, m.name, err)
				}
				if !reflect.DeepEqual(stripObservers(got[0].Result), stripObservers(base[0].Result)) {
					t.Errorf("%s seed %d [%s]: result differs from plain run", policy, seed, m.name)
				}
			}
		}
	}
}

// TestDifferentialGridParallel runs one batch of cells serially and
// through the parallel worker pool and asserts identical results:
// engine recycling across worker goroutines must not leak state
// between cells.
func TestDifferentialGridParallel(t *testing.T) {
	var cells []GridCell
	for _, kernel := range []string{"gzip", "mcf", "wupwise"} {
		for _, conf := range AllConfigs() {
			cells = append(cells, GridCell{Kernel: kernel, Config: conf})
		}
	}
	serial, err := RunGrid(cells, diffOpts, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGrid(cells, diffOpts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("%s/%s: parallel grid result differs from serial",
				cells[i].Kernel, cells[i].Config)
		}
	}
}
