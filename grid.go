package wsrs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"wsrs/internal/check"
	"wsrs/internal/kernels"
	"wsrs/internal/pipeline"
	"wsrs/internal/probe"
	"wsrs/internal/tracecache"
)

// traceCache memoizes the annotated µop stream of each kernel: the
// architectural trace depends only on the kernel (the warmup/measure
// windows consume a prefix of one infinite stream), so the functional
// simulation runs once per kernel and is replayed read-only by every
// (configuration, seed) grid cell, serial or concurrent.
var traceCache = tracecache.New()

// kernelReader returns a fresh read-only cursor over kernel's
// memoized trace, creating the cache entry on first use.
func kernelReader(kernel string) (*tracecache.Cursor, error) {
	k, ok := kernels.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("wsrs: unknown kernel %q (have %v)", kernel, kernels.Names())
	}
	ent, err := traceCache.Get(k.Name, func() (tracecache.Source, error) {
		return k.NewSim()
	})
	if err != nil {
		return nil, err
	}
	return ent.Reader(), nil
}

// TraceCacheStats re-exports the trace-cache counter snapshot.
type TraceCacheStats = tracecache.Stats

// TraceStats snapshots the shared trace cache: funcsim runs (misses),
// reuses (hits) and memoized µops. cmd/wsrsbench prints it on the
// summary line.
func TraceStats() TraceCacheStats { return traceCache.Stats() }

// ResetTraceCache drops every memoized trace (they can hold tens of
// megabytes per kernel at large measure windows) and zeroes the
// counters.
func ResetTraceCache() { traceCache.Reset() }

// GridCell identifies one point of an experiment grid: a kernel, a
// configuration, and optionally a seed override, a policy replacement
// and machine-option modifiers (the RunKernelWith degrees of
// freedom).
type GridCell struct {
	Kernel string
	Config ConfigName
	// Seed overrides the SimOpts seed when non-zero, so one grid can
	// span seeds (RunKernelSeeds is built this way).
	Seed int64
	// Policy optionally replaces the configuration's own allocation
	// policy (see NewPolicy); "" keeps it.
	Policy string
	// Mods are applied to the machine configuration in order.
	Mods []MachineOption
	// ModsKey optionally names the Mods in canonical string form (see
	// ParseMods). Functions aren't comparable, so checkpoint keys can
	// only distinguish modified cells through this field; the explore
	// subsystem and the serving layer always set it alongside Mods.
	ModsKey string
}

// GridResult pairs a cell with its simulation outcome.
type GridResult struct {
	Cell   GridCell
	Result Result
	Err    error
	// Wall is the host wall-clock time the cell's simulation took
	// (including a possible cold functional-simulation run when the
	// cell is the first user of its kernel's trace).
	Wall time.Duration
	// Resumed marks a cell whose result was restored from the
	// SimOpts.Checkpoint file instead of being simulated.
	Resumed bool
	// Worker is the index of the pool worker that ran the cell
	// (0..parallelism-1); 0 in a serial grid. It keys the host-side
	// Chrome trace tracks.
	Worker int
}

// GridObserver receives RunGrid progress callbacks. Both methods are
// called from worker goroutines — implementations must be safe for
// concurrent use — and must be cheap and read-only: observers see
// results, they never influence scheduling or outcomes. Resumed cells
// (checkpoint hits) report both callbacks too, with Resumed set.
type GridObserver interface {
	// CellStarted fires when worker begins simulating cell i.
	CellStarted(i int, cell GridCell, worker int)
	// CellFinished fires when cell i's outcome is known.
	CellFinished(i int, res GridResult)
}

// CellPanicError wraps a panic that escaped one grid cell's
// simulation: the cell keeps its identity, the goroutine stack is
// preserved, and the remaining cells complete normally.
type CellPanicError struct {
	Kernel string
	Config ConfigName
	Value  any
	Stack  string
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("cell panicked: %v", e.Value)
}

// kernelRef builds a fresh functional simulation of a kernel as the
// co-simulation oracle's reference stream. Deliberately NOT the
// memoized trace cache the pipeline reads from — an independent
// replay also catches corruption of the cache itself.
func kernelRef(kernel string) (check.RefSource, error) {
	k, ok := kernels.ByName(kernel)
	if !ok {
		return nil, fmt.Errorf("wsrs: unknown kernel %q (have %v)", kernel, kernels.Names())
	}
	ref, err := k.NewSim()
	if err != nil {
		return nil, err
	}
	return ref, nil
}

// runCell simulates one grid cell against the shared trace cache. It
// is the common backend of RunKernel, RunKernelWith and RunGrid.
func runCell(c GridCell, opts SimOpts) (Result, error) {
	opts = opts.withDefaults()
	if c.Seed != 0 {
		opts.Seed = c.Seed
	}
	cfg, pol, err := Build(c.Config, opts.Seed)
	if err != nil {
		return Result{}, err
	}
	for _, m := range c.Mods {
		m(&cfg)
	}
	if c.Policy != "" {
		// Sized after the mods so a clusters= override and the RR
		// baseline agree on the rotation modulus.
		pol, err = newPolicySized(c.Policy, opts.Seed, cfg.NumClusters)
		if err != nil {
			return Result{}, err
		}
	}
	src, err := kernelReader(c.Kernel)
	if err != nil {
		return Result{}, err
	}
	prb := opts.Probe
	if prb == nil && opts.Stats {
		// Stats mode gives the cell its own private probe, so grids
		// stay safe at any parallelism.
		prb = probe.New(probe.Options{Stalls: true})
	}
	ro := opts.runOpts()
	ro.Probe = prb
	if opts.checking() {
		ref, err := kernelRef(c.Kernel)
		if err != nil {
			return Result{}, err
		}
		ro.Check = opts.newChecker([]check.RefSource{ref})
	}
	return pipeline.Run(cfg, pol, src, ro)
}

// runCellSafe is runCell behind a recover barrier: a panicking cell
// yields a per-cell *CellPanicError instead of taking down the whole
// grid.
func runCellSafe(c GridCell, opts SimOpts) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{
				Kernel: c.Kernel,
				Config: c.Config,
				Value:  r,
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return runCell(c, opts)
}

// RunGrid fans the cells out across a worker pool of the given
// parallelism (<= 0 selects GOMAXPROCS; 1 runs strictly serially on
// the calling goroutine). Results are returned in cell order
// regardless of completion order, and every simulation replays the
// read-only memoized traces, so a parallel grid is deterministic:
// byte-identical to the serial run for a fixed seed.
//
// The returned error is the first failure in cell order (nil if all
// cells succeeded); the full result slice, including every per-cell
// Err, is returned either way so callers can render partial grids.
func RunGrid(cells []GridCell, opts SimOpts, parallelism int) ([]GridResult, error) {
	if opts.Probe != nil {
		return nil, fmt.Errorf("wsrs: a probe cannot be shared across grid cells; set SimOpts.Stats instead")
	}
	if opts.Inject != nil {
		return nil, fmt.Errorf("wsrs: a fault cannot be shared across grid cells; inject into a single run instead")
	}
	var ckpt *checkpoint
	if opts.Checkpoint != "" {
		var err error
		ckpt, err = openCheckpoint(opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer ckpt.close()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cells) {
		parallelism = len(cells)
	}
	out := make([]GridResult, len(cells))
	obs := opts.Observer
	work := func(i, worker int) {
		if obs != nil {
			obs.CellStarted(i, cells[i], worker)
		}
		key := ""
		if ckpt != nil {
			key = cellKey(i, cells[i], opts)
			if res, ok := ckpt.lookup(key); ok {
				out[i] = GridResult{Cell: cells[i], Result: res, Resumed: true, Worker: worker}
				if obs != nil {
					obs.CellFinished(i, out[i])
				}
				return
			}
		}
		start := time.Now()
		res, err := runCellSafe(cells[i], opts)
		out[i] = GridResult{Cell: cells[i], Result: res, Err: err, Wall: time.Since(start), Worker: worker}
		if ckpt != nil && err == nil {
			ckpt.record(key, res)
		}
		if obs != nil {
			obs.CellFinished(i, out[i])
		}
	}
	if parallelism <= 1 {
		for i := range cells {
			work(i, 0)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range idx {
					work(i, worker)
				}
			}(w)
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return out, gridError(out)
}

// gridError summarizes a grid's failures: nil when every cell
// succeeded, otherwise the first failure in cell order, prefixed with
// the failure count when more than one cell failed.
func gridError(out []GridResult) error {
	nfail := 0
	first := -1
	for i := range out {
		if out[i].Err != nil {
			nfail++
			if first < 0 {
				first = i
			}
		}
	}
	if nfail == 0 {
		return nil
	}
	err := fmt.Errorf("%s/%s: %w", out[first].Cell.Kernel, out[first].Cell.Config, out[first].Err)
	if nfail > 1 {
		err = fmt.Errorf("%d of %d cells failed; first: %w", nfail, len(out), err)
	}
	return err
}
