package wsrs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing:
//
//	go test -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

// goldenOpts keeps the golden simulations fast; everything feeding
// the files below is deterministic (fixed seed, integer cycle
// counts, seeded policy RNGs), so byte-for-byte comparison is sound.
var goldenOpts = SimOpts{WarmupInsts: 3000, MeasureInsts: 10000, Seed: 1}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with `go test -run Golden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden file.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intended, regenerate with `go test -run Golden -update`.",
			name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	checkGolden(t, "table1.golden", buf.Bytes())
}

func TestGoldenFigure4(t *testing.T) {
	cells, err := RunFigure4(nil, []string{"gzip", "wupwise"}, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure4(&buf, cells)
	checkGolden(t, "figure4.golden", buf.Bytes())
}

func TestGoldenFigure5(t *testing.T) {
	cells, err := RunFigure5([]string{"gzip", "wupwise"}, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure5(&buf, cells)
	checkGolden(t, "figure5.golden", buf.Bytes())
}

func TestGoldenMixTable(t *testing.T) {
	mixes, err := CharacterizeAll(20000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderMixes(&buf, mixes)
	checkGolden(t, "mix.golden", buf.Bytes())
}

// TestGoldenStallStack pins the commit-slot stall stack of gzip on
// the conventional and WSRS machines. The table is fully
// deterministic (fixed seed, integer slot counts), so a behavioral
// change anywhere in commit-slot attribution shows up as a diff.
func TestGoldenStallStack(t *testing.T) {
	var buf bytes.Buffer
	for i, conf := range []ConfigName{ConfRR256, ConfWSRSRC512} {
		opts := goldenOpts
		p := NewProbe(ProbeOptions{Stalls: true})
		opts.Probe = p
		res, err := RunKernel(conf, "gzip", opts)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Stall.Check() {
			t.Fatalf("%s: stall stack does not account every slot", conf)
		}
		if p.Stall.Committed != res.Uops {
			t.Fatalf("%s: committed slots %d != retired micro-ops %d",
				conf, p.Stall.Committed, res.Uops)
		}
		if i > 0 {
			buf.WriteByte('\n')
		}
		p.Stall.Table(fmt.Sprintf("stall stack — gzip on %s", conf)).Render(&buf)
	}
	checkGolden(t, "stalls.golden", buf.Bytes())
}
