package wsrs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"wsrs/internal/otrace"
	"wsrs/internal/telemetry"
)

// TraceObserver is the span-emitting GridObserver: one "grid.cell"
// span per cell, parented under the given context, recorded into the
// given recorder. wsrsd attaches one per simulate dispatch so the host
// RunGrid work shows up inside the job trace; non-daemon runs get the
// same spans through GridTelemetry's built-in recorder instead.
type TraceObserver struct {
	rec    *otrace.Recorder
	parent otrace.Ctx

	mu     sync.Mutex
	starts map[int]int64
}

// NewTraceObserver builds the observer. A zero parent starts a fresh
// trace on first use.
func NewTraceObserver(rec *otrace.Recorder, parent otrace.Ctx) *TraceObserver {
	return &TraceObserver{rec: rec, parent: parent, starts: map[int]int64{}}
}

// CellStarted implements GridObserver.
func (t *TraceObserver) CellStarted(i int, cell GridCell, worker int) {
	now := otrace.Now()
	t.mu.Lock()
	t.starts[i] = now
	t.mu.Unlock()
}

// CellFinished implements GridObserver.
func (t *TraceObserver) CellFinished(i int, r GridResult) {
	end := otrace.Now()
	t.mu.Lock()
	start, ok := t.starts[i]
	delete(t.starts, i)
	t.mu.Unlock()
	if !ok {
		start = end
	}
	sp := t.rec.Make("grid.cell", t.parent, start, end)
	sp.SetStr("kernel", r.Cell.Kernel)
	sp.SetStr("config", string(r.Cell.Config))
	sp.SetInt("worker", int64(r.Worker))
	if r.Err != nil {
		sp.SetStr("error", r.Err.Error())
	} else {
		sp.SetInt("cycles", r.Result.Cycles)
	}
	t.rec.Append(&sp)
}

// GridTelemetry is the batteries-included GridObserver: it turns
// RunGrid progress callbacks into
//
//   - live Prometheus metrics (cells completed/running/failed, cache
//     hit rate, per-cell wall time) in a telemetry.Registry, ready for
//     the wsrsbench -listen endpoint;
//   - optional one-line-per-cell progress output on Progress;
//   - a JSON run manifest (config digest, per-cell outcomes, counter
//     totals, aggregate activity) via WriteManifest;
//   - a host-side Chrome trace of the worker pool (one track per
//     worker, one slice per cell) via HostTrace.
//
// All methods are safe for concurrent use; RunGrid calls the observer
// from its worker goroutines.
type GridTelemetry struct {
	// Progress, when non-nil, receives one line per finished cell:
	// index, cell identity, IPC, wall time, and whether the kernel's
	// trace was already memoized (cached) or had to be built (cold).
	Progress io.Writer
	// Label names the run in the manifest (typically the experiment
	// flag value); optional.
	Label string
	// Meta carries free-form run metadata into the manifest
	// (command-line flags, environment); optional.
	Meta map[string]string

	reg    *telemetry.Registry
	start  time.Time
	tracer *otrace.Recorder
	trace  otrace.TraceID

	mu         sync.Mutex
	total      int
	seenKernel map[string]bool
	coldCell   map[int]bool
	cellStart  map[int]int64
	cells      []ManifestCell
	events     []TraceEvent
	seenWorker map[int]bool
	activity   telemetry.Activity
	insts      uint64
}

// NewGridTelemetry builds a grid observer publishing into a fresh
// registry. Attach it via SimOpts.Observer.
func NewGridTelemetry() *GridTelemetry {
	g := &GridTelemetry{
		reg:        telemetry.NewRegistry(),
		start:      time.Now(),
		tracer:     otrace.NewRecorder(0),
		seenKernel: map[string]bool{},
		coldCell:   map[int]bool{},
		cellStart:  map[int]int64{},
		seenWorker: map[int]bool{},
	}
	g.trace = g.tracer.NewTrace()
	// Register the families up front so a scrape before the first
	// cell already shows them.
	g.reg.Counter("wsrs_grid_cells_total"+telemetry.Labels("outcome", "ok"), "grid cells by outcome")
	g.reg.Counter("wsrs_grid_cells_total"+telemetry.Labels("outcome", "error"), "grid cells by outcome")
	g.reg.Counter("wsrs_grid_cells_total"+telemetry.Labels("outcome", "resumed"), "grid cells by outcome")
	g.reg.Gauge("wsrs_grid_cells_running", "grid cells currently simulating")
	g.reg.Histogram("wsrs_grid_cell_ms", "per-cell wall time in milliseconds")
	g.reg.Counter("wsrs_grid_insts_total", "committed instructions across finished cells")
	g.reg.Gauge("wsrs_trace_cache_hits", "trace cache reuses")
	g.reg.Gauge("wsrs_trace_cache_misses", "trace cache cold functional simulations")
	return g
}

// Registry exposes the observer's metric registry (for the HTTP
// endpoint or direct scraping).
func (g *GridTelemetry) Registry() *Registry { return g.reg }

// CellStarted implements GridObserver.
func (g *GridTelemetry) CellStarted(i int, cell GridCell, worker int) {
	g.reg.Gauge("wsrs_grid_cells_running", "").Add(1)
	g.mu.Lock()
	g.total++
	g.cellStart[i] = otrace.Now()
	if !g.seenKernel[cell.Kernel] {
		g.seenKernel[cell.Kernel] = true
		g.coldCell[i] = true
	}
	if !g.seenWorker[worker] {
		g.seenWorker[worker] = true
		g.events = append(g.events,
			telemetry.MetadataEvent("process_name", "wsrsbench grid", 1, 0),
			telemetry.MetadataEvent("thread_name", fmt.Sprintf("worker %d", worker), 1, worker+1))
	}
	g.mu.Unlock()
}

// CellFinished implements GridObserver.
func (g *GridTelemetry) CellFinished(i int, r GridResult) {
	g.reg.Gauge("wsrs_grid_cells_running", "").Add(-1)
	outcome := "ok"
	switch {
	case r.Err != nil:
		outcome = "error"
	case r.Resumed:
		outcome = "resumed"
	}
	g.reg.Counter("wsrs_grid_cells_total"+telemetry.Labels("outcome", outcome), "grid cells by outcome").Inc()
	ms := uint64(r.Wall.Milliseconds())
	g.reg.Histogram("wsrs_grid_cell_ms", "").Observe(ms)
	g.reg.Counter("wsrs_grid_insts_total", "").Add(r.Result.Insts)
	ts := TraceStats()
	g.reg.Gauge("wsrs_trace_cache_hits", "").Set(int64(ts.Hits))
	g.reg.Gauge("wsrs_trace_cache_misses", "").Set(int64(ts.Misses))

	g.mu.Lock()
	cold := g.coldCell[i]
	mc := ManifestCell{
		Index: i, Kernel: r.Cell.Kernel, Config: string(r.Cell.Config),
		Seed: r.Cell.Seed, Policy: r.Cell.Policy,
		WallMs: float64(r.Wall.Microseconds()) / 1000,
		Worker: r.Worker, Resumed: r.Resumed, ColdTrace: cold,
	}
	if r.Err != nil {
		mc.Error = r.Err.Error()
	} else {
		mc.IPC = r.Result.IPC
		mc.Insts = r.Result.Insts
		mc.Cycles = r.Result.Cycles
	}
	g.cells = append(g.cells, mc)
	g.insts += r.Result.Insts
	if a := r.Result.Activity; a != nil {
		mergeActivity(&g.activity, a)
	}
	ev := telemetry.CompleteEvent(
		fmt.Sprintf("%s/%s", r.Cell.Kernel, r.Cell.Config), "cell",
		float64(time.Since(g.start).Microseconds())-float64(r.Wall.Microseconds()),
		float64(r.Wall.Microseconds()), 1, r.Worker+1)
	ev.Args = map[string]any{"index": i, "ipc": r.Result.IPC, "resumed": r.Resumed}
	g.events = append(g.events, ev)
	done := len(g.cells)
	startNs, haveStart := g.cellStart[i]
	delete(g.cellStart, i)
	g.mu.Unlock()

	endNs := otrace.Now()
	if !haveStart {
		startNs = endNs
	}
	sp := g.tracer.Make("grid.cell", otrace.Ctx{Trace: g.trace}, startNs, endNs)
	sp.SetStr("kernel", r.Cell.Kernel)
	sp.SetStr("config", string(r.Cell.Config))
	sp.SetInt("cell", int64(i))
	sp.SetInt("worker", int64(r.Worker))
	if r.Err != nil {
		sp.SetStr("error", r.Err.Error())
	} else {
		sp.SetBool("cold_trace", cold)
	}
	g.tracer.Append(&sp)

	if g.Progress != nil {
		status := "cached trace"
		if cold {
			status = "cold trace"
		}
		if r.Resumed {
			status = "resumed"
		}
		line := fmt.Sprintf("[%d] %s/%s: IPC %.2f, %.1f ms, %s\n",
			done, r.Cell.Kernel, r.Cell.Config, r.Result.IPC,
			float64(r.Wall.Microseconds())/1000, status)
		if r.Err != nil {
			line = fmt.Sprintf("[%d] %s/%s: FAILED: %v\n", done, r.Cell.Kernel, r.Cell.Config, r.Err)
		}
		fmt.Fprint(g.Progress, line)
	}
}

// mergeActivity adds src's counts into dst (single-writer contexts:
// called under the observer mutex).
func mergeActivity(dst, src *telemetry.Activity) {
	for i := 0; i < telemetry.MaxDomains; i++ {
		dst.RegReads[i] += src.RegReads[i]
		dst.RegWrites[i] += src.RegWrites[i]
		dst.Wakeup[i] += src.Wakeup[i]
		dst.BypassDrives[i] += src.BypassDrives[i]
		dst.Renames[i] += src.Renames[i]
		dst.FreeListStalls[i] += src.FreeListStalls[i]
	}
	dst.BypassLocal += src.BypassLocal
	dst.BypassCross += src.BypassCross
	dst.Moves += src.Moves
}

// ManifestCell is one cell's outcome in the run manifest.
type ManifestCell struct {
	Index     int     `json:"index"`
	Kernel    string  `json:"kernel"`
	Config    string  `json:"config"`
	Seed      int64   `json:"seed,omitempty"`
	Policy    string  `json:"policy,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	Insts     uint64  `json:"insts,omitempty"`
	Cycles    int64   `json:"cycles,omitempty"`
	WallMs    float64 `json:"wall_ms"`
	Worker    int     `json:"worker"`
	Resumed   bool    `json:"resumed,omitempty"`
	ColdTrace bool    `json:"cold_trace,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// Manifest is the JSON run record GridTelemetry writes after a grid:
// what ran (digest of the cell identities), how it went per cell, and
// the counter totals.
type Manifest struct {
	Label        string            `json:"label,omitempty"`
	ConfigDigest string            `json:"config_digest"`
	StartTime    time.Time         `json:"start_time"`
	WallMs       float64           `json:"wall_ms"`
	CellsTotal   int               `json:"cells_total"`
	CellsFailed  int               `json:"cells_failed"`
	Insts        uint64            `json:"insts_total"`
	Meta         map[string]string `json:"meta,omitempty"`
	Counters     map[string]uint64 `json:"counters"`
	Activity     map[string]uint64 `json:"activity,omitempty"`
	Cells        []ManifestCell    `json:"cells"`
}

// BuildManifest assembles the manifest from everything observed so
// far. The config digest is the SHA-256 over the sorted cell
// identities (kernel, config, seed, policy), so two runs of the same
// grid agree on it regardless of completion order or parallelism.
func (g *GridTelemetry) BuildManifest() Manifest {
	g.mu.Lock()
	cells := append([]ManifestCell(nil), g.cells...)
	act := g.activity
	insts := g.insts
	g.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })

	h := sha256.New()
	failed := 0
	for _, c := range cells {
		fmt.Fprintf(h, "%s|%s|%d|%s\n", c.Kernel, c.Config, c.Seed, c.Policy)
		if c.Error != "" {
			failed++
		}
	}
	m := Manifest{
		Label:        g.Label,
		ConfigDigest: hex.EncodeToString(h.Sum(nil)),
		StartTime:    g.start,
		WallMs:       float64(time.Since(g.start).Microseconds()) / 1000,
		CellsTotal:   len(cells),
		CellsFailed:  failed,
		Insts:        insts,
		Meta:         g.Meta,
		Counters:     g.reg.Snapshot(),
		Cells:        cells,
	}
	if act.RegWriteTotal() > 0 || act.RegReadTotal() > 0 {
		m.Activity = map[string]uint64{
			"reg_reads":        act.RegReadTotal(),
			"reg_writes":       act.RegWriteTotal(),
			"wakeup_events":    act.WakeupTotal(),
			"bypass_drives":    act.BypassDriveTotal(),
			"bypass_uses":      act.BypassUseTotal(),
			"moves":            act.Moves,
			"free_list_stalls": act.FreeListStallTotal(),
		}
	}
	return m
}

// WriteManifest writes the run manifest as indented JSON.
func (g *GridTelemetry) WriteManifest(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g.BuildManifest())
}

// HostTrace returns the worker-pool Chrome trace events accumulated so
// far (pid 1, one tid per worker, one slice per cell).
func (g *GridTelemetry) HostTrace() []TraceEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]TraceEvent(nil), g.events...)
}

// WriteHostTrace writes the worker-pool trace as Perfetto-loadable
// Chrome trace JSON.
func (g *GridTelemetry) WriteHostTrace(w io.Writer) error {
	return WriteTrace(w, g.HostTrace())
}

// Spans returns the per-cell "grid.cell" spans recorded so far,
// oldest first.
func (g *GridTelemetry) Spans() []otrace.Span {
	return g.tracer.Snapshot()
}

// WriteSpans writes the recorded spans as an otrace document (the
// wsrsbench -spans artifact; same wire shape as the daemon's
// /v1/jobs/{id}/trace endpoint, validated by telcheck -spans).
func (g *GridTelemetry) WriteSpans(w io.Writer) error {
	doc := otrace.NewDocument(g.trace, g.Spans())
	doc.Label = g.Label
	doc.Evicted = g.tracer.Total() - uint64(g.tracer.Len())
	return otrace.WriteDocument(w, doc)
}
