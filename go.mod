module wsrs

go 1.22
