package wsrs

import (
	"fmt"

	"wsrs/internal/alloc"
	"wsrs/internal/pipeline"
	"wsrs/internal/rename"
)

// MachineOption mutates a machine configuration; used by the ablation
// studies in bench_test.go and the example programs.
type MachineOption func(*pipeline.Config)

// WithRenameImpl1 selects the paper's first renaming implementation
// (§2.2.1): over-picking registers from every subset free list each
// cycle, with the unused picks recycled through a pipeline of the
// given depth.
func WithRenameImpl1(recycleDepth int) MachineOption {
	return func(c *pipeline.Config) {
		c.Rename.Impl = rename.ImplOverPick
		c.Rename.OverPickWidth = c.FetchWidth
		c.Rename.RecycleDepth = recycleDepth
		// §5.2.1: the first implementation saves two renaming stages
		// relative to the second on WSRS machines (16 vs 18 cycles).
		if c.WSRS {
			c.MispredictPenalty = 16
		}
	}
}

// WithRegisters overrides the total physical register count of both
// register classes (must divide evenly into the subsets).
func WithRegisters(n int) MachineOption {
	return func(c *pipeline.Config) {
		c.Rename.IntRegs = n
		c.Rename.FPRegs = n
	}
}

// WithXClusterDelay overrides the inter-cluster forwarding delay
// (paper §5.2 uses 1 cycle).
func WithXClusterDelay(d int) MachineOption {
	return func(c *pipeline.Config) { c.XClusterDelay = d }
}

// WithPerfectBP replaces the 2Bc-gskew predictor with an oracle.
func WithPerfectBP() MachineOption {
	return func(c *pipeline.Config) { c.PerfectBP = true }
}

// WithMispredictPenalty overrides the minimum misprediction penalty.
func WithMispredictPenalty(p int) MachineOption {
	return func(c *pipeline.Config) { c.MispredictPenalty = p }
}

// WithDeadlockMoves enables the §2.3 move-injection workaround.
func WithDeadlockMoves() MachineOption {
	return func(c *pipeline.Config) { c.DeadlockMoves = true }
}

// RunKernelWith is RunKernel with configuration overrides and an
// optional policy replacement (pass "" to keep the configuration's
// own policy; "RC-bal" selects the least-loaded ablation policy).
func RunKernelWith(conf ConfigName, kernel string, opts SimOpts, policy string, mods ...MachineOption) (Result, error) {
	return runCell(GridCell{Kernel: kernel, Config: conf, Policy: policy, Mods: mods}, opts)
}

// NewPolicy builds an allocation policy by name: "RR", "RM", "RC",
// "RC-bal" (least-loaded), "RC-dep" (locality-first) or "RR-aff"
// (round-robin with producer-cluster affinity).
func NewPolicy(name string, seed int64) (alloc.Policy, error) {
	return newPolicySized(name, seed, 4)
}

// newPolicySized is NewPolicy for a machine with k clusters. Only the
// pure round-robin baseline varies with the cluster count; the
// specialization-aware policies are defined over the fixed 4-cluster
// subset grid of the paper.
func newPolicySized(name string, seed int64, k int) (alloc.Policy, error) {
	switch name {
	case "RR":
		return alloc.NewRoundRobin(k), nil
	case "RM":
		return alloc.NewRM(seed), nil
	case "RC":
		return alloc.NewRC(seed), nil
	case "RC-bal":
		return alloc.NewRCBalanced(seed), nil
	case "RC-dep":
		return alloc.NewRCDep(seed), nil
	case "RR-aff":
		return alloc.NewRRAff(), nil
	}
	return nil, fmt.Errorf("wsrs: unknown policy %q", name)
}

// WithClusters overrides the number of execution clusters. Values
// other than 4 are only meaningful without read specialization (the
// WSRS read-pair mapping is defined over the 4-cluster grid);
// pipeline validation enforces that.
func WithClusters(n int) MachineOption {
	return func(c *pipeline.Config) { c.NumClusters = n }
}

// WithIssueWidth overrides the per-cluster issue width and scales the
// execution resources with it, keeping the paper's shape: w integer
// ALUs, one load/store unit and one FPU per two issue slots, and w+1
// writeback ports (w results plus one load return, generalizing the
// EV6-style 2 ALU + 1 load = 3 write ports of the 2-wide cluster).
func WithIssueWidth(w int) MachineOption {
	return func(c *pipeline.Config) {
		half := (w + 1) / 2
		c.Cluster.IssueWidth = w
		c.Cluster.NumALU = w
		c.Cluster.NumLSU = half
		c.Cluster.NumFPU = half
		c.Cluster.WritePorts = w + 1
	}
}

// WithIQSize overrides the per-cluster scheduler capacity. The paper
// uses an RUU-style window where the scheduler is the in-flight
// window, so MaxInflight moves with it.
func WithIQSize(n int) MachineOption {
	return func(c *pipeline.Config) {
		c.Cluster.IQSize = n
		c.Cluster.MaxInflight = n
	}
}

// WithROBSize overrides the reorder-buffer capacity.
func WithROBSize(n int) MachineOption {
	return func(c *pipeline.Config) { c.ROBSize = n }
}

// WithSubsets overrides the number of write-specialized register
// subsets. With specialization enabled the dispatch stage equates the
// result subset with the executing cluster, so any value other than
// the cluster count is rejected by pipeline validation.
func WithSubsets(n int) MachineOption {
	return func(c *pipeline.Config) { c.Rename.NumSubsets = n }
}

// Forwarding hardware options of paper §4.3.1 for the 4-cluster WSRS
// layout of Figure 3, where clusters form a 2x2 grid (C0 C1 / C2 C3)
// and every consumer cluster touches its producer's row or column.
const (
	// ForwardComplete is a complete fast-forwarding network: one
	// cycle between any two clusters (the paper's simulated design).
	ForwardComplete = "complete"
	// ForwardPairs provides fast-forwarding inside pairs of adjacent
	// clusters: one cycle to grid neighbours, two to the diagonal.
	ForwardPairs = "pairs"
	// ForwardIntra provides no inter-cluster fast-forwarding: remote
	// results take two cycles (a register-file trip).
	ForwardIntra = "intra"
)

// WithForwarding installs one of the §4.3.1 fast-forwarding options.
func WithForwarding(option string) MachineOption {
	return func(c *pipeline.Config) {
		n := c.NumClusters
		m := make([][]int, n)
		for p := 0; p < n; p++ {
			m[p] = make([]int, n)
			for q := 0; q < n; q++ {
				if p == q {
					continue
				}
				switch option {
				case ForwardComplete:
					m[p][q] = 1
				case ForwardPairs:
					// Adjacent in the 2x2 layout: share a row bit or
					// a column bit; the diagonal differs in both.
					if p^q == 3 {
						m[p][q] = 2
					} else {
						m[p][q] = 1
					}
				case ForwardIntra:
					m[p][q] = 2
				}
			}
		}
		c.ForwardDelay = m
	}
}

// WithDeadlockAvoidance enables workaround (a) of §2.3: allocation
// re-steers micro-ops away from register subsets with no free
// registers (within the read-specialization constraints).
func WithDeadlockAvoidance() MachineOption {
	return func(c *pipeline.Config) { c.DeadlockAvoidAlloc = true }
}

// WithSharedDividers enables §4.1's shared-divider organization: one
// integer divider per adjacent cluster pair instead of one per
// cluster, with static (cycle-parity) arbitration.
func WithSharedDividers() MachineOption {
	return func(c *pipeline.Config) { c.SharedDividers = true }
}
