# Development targets. The module needs only the Go toolchain.

GO ?= go

.PHONY: build test race bench bench-gate bench-serve bench-fleet bench-explore golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/trace ./internal/tracecache ./internal/pipeline ./internal/telemetry ./internal/otrace ./internal/otrace/federate ./internal/otrace/flight ./internal/serve ./internal/fleet ./internal/fleet/chaos ./internal/explore

# Pinned benchmark invocation: a single CPU, a fixed benchtime and a
# single count make successive runs (and the committed baseline vs a
# gate run) comparable — allocs/op in particular amortizes one-time
# warmup over the same iteration budget everywhere. BENCH_FLAGS is
# recorded inside the JSON so a mismatched comparison is self-evident.
BENCH_FLAGS = -bench Core -benchmem -run NONE -count 1 -cpu 1 -benchtime 2s
BENCH_PKGS = . ./internal/rename ./internal/wakeup ./internal/bypass \
	./internal/telemetry ./internal/pipeline ./internal/otrace ./internal/fleet

# bench reruns the BenchmarkCore* hot-path microbenchmarks (rename map
# lookup, wake-up broadcast pricing, bypass arbitration, counter
# increments, metered vs plain pipeline, grid dispatch) and rewrites
# the committed baseline at the repository root.
bench:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -params "$(BENCH_FLAGS)" > BENCH_core.json
	@echo wrote BENCH_core.json

# bench-gate reruns the same pinned benchmarks and fails if any of
# them regressed against the committed baseline. Wall time gets a
# loose tolerance (CI machines differ from whoever recorded the
# baseline); allocation counts are deterministic and gated tightly.
bench-gate:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -params "$(BENCH_FLAGS)" > /tmp/BENCH_core.new.json
	$(GO) run ./cmd/benchjson -compare -tolerance 1.0 -tolerance-allocs 0.1 \
		BENCH_core.json /tmp/BENCH_core.new.json

# bench-serve load-tests the serving layer: a local wsrsd daemon, a
# wsrsload closed-loop concurrency ramp with a 50% duplicate mix
# (exercising the content-addressed cache and request coalescing), and
# the p50/p95/p99 + throughput report committed at the repository root
# alongside BENCH_core.json.
bench-serve:
	$(GO) build -o /tmp/wsrsd ./cmd/wsrsd
	$(GO) build -o /tmp/wsrsload ./cmd/wsrsload
	/tmp/wsrsd -listen 127.0.0.1:18980 & \
	WSRSD_PID=$$!; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18980/readyz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/wsrsload -addr http://127.0.0.1:18980 -levels 1,2,4,8 -n 32 -dup 0.5 \
		-warmup 2000 -measure 10000 -out BENCH_serve.json; \
	STATUS=$$?; \
	kill -TERM $$WSRSD_PID 2>/dev/null; wait $$WSRSD_PID; exit $$STATUS
	@echo wrote BENCH_serve.json

# bench-fleet measures the scatter/gather coordinator: fresh
# in-process fleets (real wsrsd cores behind chaos proxies on
# loopback) at each backend count, one fixed grid scattered across
# them and verified byte-identical to a direct local run, then the
# widest fleet again with one backend hard-killed mid-job. The run
# fails if any fleet result diverges from the local baseline.
bench-fleet:
	$(GO) run ./cmd/wsrsload -fleet 1,2,3 -measure 200000 -out BENCH_fleet.json
	@echo wrote BENCH_fleet.json

# bench-explore measures design-space exploration throughput: the CI
# smoke space explored twice in-process — with and without the
# analytic M/M/c pre-filter — points/sec for each, the pre-filter
# speedup, and a hard failure if the pre-filter changed the frontier
# (it must only ever remove dominated points). The report is committed
# as BENCH_explore.json alongside the other baselines.
bench-explore:
	$(GO) run ./cmd/wsrsexplore -bench -quiet -out BENCH_explore.json

golden:
	$(GO) test -run Golden -update .
