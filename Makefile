# Development targets. The module needs only the Go toolchain.

GO ?= go

.PHONY: build test race bench golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/trace ./internal/tracecache ./internal/pipeline ./internal/telemetry

# bench reruns the BenchmarkCore* hot-path microbenchmarks (rename map
# lookup, wake-up broadcast pricing, bypass arbitration, counter
# increments, metered vs plain pipeline, grid dispatch) and rewrites
# the committed baseline at the repository root.
bench:
	$(GO) test -bench Core -benchmem -run NONE \
		. ./internal/rename ./internal/wakeup ./internal/bypass \
		./internal/telemetry ./internal/pipeline \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json

golden:
	$(GO) test -run Golden -update .
