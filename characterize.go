package wsrs

import (
	"io"

	"wsrs/internal/isa"
	"wsrs/internal/limits"
	"wsrs/internal/report"
)

// Mix characterizes a dynamic instruction stream along the dimensions
// §3.3 of the paper builds its degrees-of-freedom argument on: the
// fractions of noadic/monadic/dyadic micro-ops, how many are
// commutative or executable in two forms, and the resulting average
// number of WSRS placement choices per micro-op.
type Mix struct {
	Kernel string
	Uops   uint64

	Noadic  float64 // fraction with no register operand
	Monadic float64 // one register operand
	Dyadic  float64 // two register operands

	Commutative  float64 // truly commutative dyadic
	HWCommutable float64 // two-form executable (§3.3 commutative clusters)

	Loads, Stores, Branches, FPOps float64

	// AvgChoicesRM / AvgChoicesRC are the mean number of clusters a
	// micro-op may execute on under the RM freedoms (monadic only)
	// and the RC freedoms (two-form hardware), assuming operands in
	// uniformly random subsets for dyadic instructions.
	AvgChoicesRM float64
	AvgChoicesRC float64
}

// Characterize computes the dynamic mix of the first n micro-ops of a
// kernel (replayed from the shared trace cache).
func Characterize(kernel string, n int) (Mix, error) {
	cur, err := kernelReader(kernel)
	if err != nil {
		return Mix{}, err
	}
	mix := Mix{Kernel: kernel}
	var choicesRM, choicesRC float64
	for i := 0; i < n; i++ {
		m, ok := cur.Next()
		if !ok {
			break
		}
		mix.Uops++
		switch m.Arity() {
		case isa.Noadic:
			mix.Noadic++
			choicesRM += 4
			choicesRC += 4
		case isa.Monadic:
			mix.Monadic++
			choicesRM += 2
			// Two-form hardware lets any monadic op use either entry:
			// 3 clusters (§3.3).
			choicesRC += 3
		default:
			mix.Dyadic++
			choicesRM++
			if m.Commutative {
				mix.Commutative++
			}
			if m.HWCommutable {
				mix.HWCommutable++
			}
			// Two-form dyadic: 2 clusters when the operands lie in
			// different subsets (probability 3/4 for uniform subsets).
			choicesRC += 1 + 0.75
		}
		switch m.Class {
		case isa.ClassLoad:
			mix.Loads++
		case isa.ClassStore:
			mix.Stores++
		case isa.ClassFP, isa.ClassFPDiv:
			mix.FPOps++
		}
		if m.IsBranch {
			mix.Branches++
		}
	}
	if mix.Uops == 0 {
		return mix, cur.Err()
	}
	total := float64(mix.Uops)
	mix.Noadic /= total
	mix.Monadic /= total
	mix.Dyadic /= total
	mix.Commutative /= total
	mix.HWCommutable /= total
	mix.Loads /= total
	mix.Stores /= total
	mix.Branches /= total
	mix.FPOps /= total
	mix.AvgChoicesRM = choicesRM / total
	mix.AvgChoicesRC = choicesRC / total
	return mix, cur.Err()
}

// CharacterizeAll characterizes every kernel over n micro-ops each.
func CharacterizeAll(n int) ([]Mix, error) {
	var out []Mix
	for _, name := range Kernels() {
		m, err := Characterize(name, n)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// RenderMixes writes the characterization as a table.
func RenderMixes(w io.Writer, mixes []Mix) {
	t := report.NewTable("Dynamic instruction mix (fractions of micro-ops; §3.3 degrees of freedom)",
		"kernel", "noadic", "monadic", "dyadic", "2-form", "loads", "stores",
		"branches", "fp", "choices RM", "choices RC")
	for _, m := range mixes {
		t.AddRow(m.Kernel, m.Noadic, m.Monadic, m.Dyadic, m.HWCommutable,
			m.Loads, m.Stores, m.Branches, m.FPOps, m.AvgChoicesRM, m.AvgChoicesRC)
	}
	t.Render(w)
}

// LimitReport re-exports the dataflow limit study.
type LimitReport = limits.Report

// Limits computes the dataflow limit study (infinite-machine ILP
// bound) over the first n micro-ops of a kernel. Comparing it against
// the simulated IPCs shows how much of each proxy's parallelism the
// 8-way clustered machines harvest.
func Limits(kernel string, n int) (LimitReport, error) {
	ops, err := Trace(kernel, n)
	if err != nil {
		return LimitReport{}, err
	}
	return limits.Analyze(ops, isa.DefaultLatencies()), nil
}
