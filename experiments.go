package wsrs

import (
	"fmt"
	"io"
	"time"

	"wsrs/internal/cacti"
	"wsrs/internal/probe"
	"wsrs/internal/regfile"
	"wsrs/internal/report"
)

// Table1Row re-exports the register-file comparison row.
type Table1Row = regfile.Row

// Table1 regenerates the paper's Table 1: register file estimates for
// noWS-M, noWS-D, WS, WSRS and noWS-2 at 0.09 µm.
func Table1() []Table1Row {
	return regfile.Table1(cacti.Tech009(), regfile.PaperConfigs())
}

// RenderTable1 writes the Table 1 reproduction as a text table.
func RenderTable1(w io.Writer) {
	t := report.NewTable("Table 1 — register file estimates (0.09um, model)",
		"config", "regs", "copies", "(R,W)", "subfiles",
		"nJ/cycle", "access ns", "pipe@10GHz", "bypass@10GHz",
		"pipe@5GHz", "bypass@5GHz", "bit area (w^2)", "rel area")
	for _, r := range Table1() {
		t.AddRow(r.Org.Name, r.Org.TotalRegs, r.Org.Copies,
			fmt.Sprintf("(%d,%d)", r.Org.ReadPorts, r.Org.WritePorts),
			r.Org.Subfiles, r.EnergyNJ, fmt.Sprintf("%.3f", r.AccessNs),
			r.Pipe10GHz, r.Bypass10GHz, r.Pipe5GHz, r.Bypass5GHz,
			r.BitArea, r.AreaRel)
	}
	t.Render(w)
}

// Figure4Cell is the IPC of one (benchmark, configuration) pair.
type Figure4Cell struct {
	Kernel string
	Config ConfigName
	Result Result
	// Wall is the cell's host wall-clock simulation time.
	Wall time.Duration
}

// RunFigure4 regenerates the paper's Figure 4: IPC of every benchmark
// on every configuration. Errors abort (they indicate a broken
// configuration, not a property of the workload).
//
// The grid fans out across opts.Parallelism workers (0 = GOMAXPROCS)
// over the shared trace cache: each kernel's functional simulation
// runs once for all configurations, and the returned cells are in the
// same deterministic (kernel, config) order as the serial harness.
func RunFigure4(confs []ConfigName, kernelNames []string, opts SimOpts) ([]Figure4Cell, error) {
	if confs == nil {
		confs = Figure4Configs()
	}
	if kernelNames == nil {
		kernelNames = Kernels()
	}
	// Validate both axes before any cell runs: a typo'd kernel or
	// configuration fails here, not mid-grid with a partial table.
	if err := ValidateKernelNames(kernelNames); err != nil {
		return nil, err
	}
	for _, c := range confs {
		if _, err := ValidateConfigName(string(c)); err != nil {
			return nil, err
		}
	}
	cells := make([]GridCell, 0, len(kernelNames)*len(confs))
	for _, k := range kernelNames {
		for _, c := range confs {
			cells = append(cells, GridCell{Kernel: k, Config: c})
		}
	}
	grid, err := RunGrid(cells, opts, opts.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("figure4 %w", err)
	}
	out := make([]Figure4Cell, len(grid))
	for i, g := range grid {
		out[i] = Figure4Cell{Kernel: g.Cell.Kernel, Config: g.Cell.Config, Result: g.Result, Wall: g.Wall}
	}
	return out, nil
}

// RenderFigure4 writes Figure 4 as a table: one row per benchmark,
// one IPC column per configuration.
func RenderFigure4(w io.Writer, cells []Figure4Cell) {
	confs := Figure4Configs()
	header := []string{"benchmark"}
	for _, c := range confs {
		header = append(header, string(c))
	}
	t := report.NewTable("Figure 4 — IPC", header...)
	byKernel := map[string]map[ConfigName]float64{}
	var order []string
	for _, c := range cells {
		if byKernel[c.Kernel] == nil {
			byKernel[c.Kernel] = map[ConfigName]float64{}
			order = append(order, c.Kernel)
		}
		byKernel[c.Kernel][c.Config] = c.Result.IPC
	}
	for _, k := range order {
		row := []any{k}
		for _, c := range confs {
			if v, ok := byKernel[k][c]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// RenderFigure4Stats writes the observability companion of Figure 4:
// one row per (benchmark, configuration) cell with its IPC, host
// wall-clock simulation time, and the commit-slot stall stack grouped
// into broad categories (% of all commit slots). Cells must come from
// a run with SimOpts.Stats set; cells without a stall stack render
// dashes.
func RenderFigure4Stats(w io.Writer, cells []Figure4Cell) {
	t := report.NewTable("Figure 4 — wall time and commit-slot breakdown (% of slots)",
		"benchmark", "config", "IPC", "wall ms",
		"commit", "mispred", "memory", "exec", "issue", "rename", "front", "pJ/inst")
	for _, c := range cells {
		// The energy column fills only for cells run with telemetry on
		// (SimOpts.Telemetry); others render a dash.
		energy := "-"
		if a := c.Result.Activity; a != nil && c.Result.Insts > 0 {
			if m, err := EnergyModelFor(c.Config); err == nil {
				energy = fmt.Sprintf("%.1f", m.Stack(a, c.Result.Insts).TotalPJPerInst())
			}
		}
		s := c.Result.Stalls
		wall := fmt.Sprintf("%.1f", float64(c.Wall.Microseconds())/1000)
		if s == nil || s.TotalSlots() == 0 {
			t.AddRow(c.Kernel, string(c.Config), c.Result.IPC, wall,
				"-", "-", "-", "-", "-", "-", "-", energy)
			continue
		}
		pct := func(f float64) string { return fmt.Sprintf("%.1f", 100*f) }
		t.AddRow(c.Kernel, string(c.Config), c.Result.IPC, wall,
			pct(float64(s.Committed)/float64(s.TotalSlots())),
			pct(s.Share(probe.CauseMispredict, probe.CauseTrap)),
			pct(s.Share(probe.CauseCacheMiss, probe.CauseMemOrder)),
			pct(s.Share(probe.CauseExecDep, probe.CauseExecLat, probe.CauseXClusterForward)),
			pct(s.Share(probe.CauseIssueWait)),
			pct(s.Share(probe.CauseFreeList)),
			pct(s.Share(probe.CauseFrontend, probe.CauseDrain)), energy)
	}
	t.Render(w)
}

// Figure5Cell is the unbalancing degree of one (benchmark, policy)
// pair, in percent.
type Figure5Cell struct {
	Kernel string
	Config ConfigName
	Degree float64
}

// RunFigure5 regenerates the paper's Figure 5: the §5.4.2 unbalancing
// degree for the WSRS RC and RM policies on every benchmark
// (round-robin is perfectly balanced by construction and not
// plotted, as in the paper).
func RunFigure5(kernelNames []string, opts SimOpts) ([]Figure5Cell, error) {
	if kernelNames == nil {
		kernelNames = Kernels()
	}
	if err := ValidateKernelNames(kernelNames); err != nil {
		return nil, err
	}
	confs := []ConfigName{ConfWSRSRC512, ConfWSRSRM512}
	cells := make([]GridCell, 0, len(kernelNames)*len(confs))
	for _, k := range kernelNames {
		for _, c := range confs {
			cells = append(cells, GridCell{Kernel: k, Config: c})
		}
	}
	grid, err := RunGrid(cells, opts, opts.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("figure5 %w", err)
	}
	out := make([]Figure5Cell, len(grid))
	for i, g := range grid {
		out[i] = Figure5Cell{Kernel: g.Cell.Kernel, Config: g.Cell.Config, Degree: g.Result.UnbalancingDegree}
	}
	return out, nil
}

// RenderFigure5 writes Figure 5 as a table.
func RenderFigure5(w io.Writer, cells []Figure5Cell) {
	t := report.NewTable("Figure 5 — unbalancing degree (%)",
		"benchmark", "WSRS RC", "WSRS RM")
	type row struct{ rc, rm float64 }
	byKernel := map[string]*row{}
	var order []string
	for _, c := range cells {
		r := byKernel[c.Kernel]
		if r == nil {
			r = &row{}
			byKernel[c.Kernel] = r
			order = append(order, c.Kernel)
		}
		if c.Config == ConfWSRSRM512 {
			r.rm = c.Degree
		} else {
			r.rc = c.Degree
		}
	}
	for _, k := range order {
		t.AddRow(k, fmt.Sprintf("%.1f", byKernel[k].rc), fmt.Sprintf("%.1f", byKernel[k].rm))
	}
	t.Render(w)
}
