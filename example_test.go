package wsrs_test

import (
	"fmt"

	"wsrs"
)

// The structural rows of Table 1 are exact reproductions of the
// paper, so they make a stable documented example.
func ExampleTable1() {
	rows := wsrs.Table1()
	for _, r := range rows {
		fmt.Printf("%-7s %d regs, %d copies, (%d,%d) ports, bit area %d w2, %.2fx area\n",
			r.Org.Name, r.Org.TotalRegs, r.Org.Copies,
			r.Org.ReadPorts, r.Org.WritePorts, r.BitArea, r.AreaRel)
	}
	// Output:
	// noWS-M  256 regs, 1 copies, (16,12) ports, bit area 1120 w2, 7.00x area
	// noWS-D  256 regs, 4 copies, (4,12) ports, bit area 1792 w2, 11.20x area
	// WS      512 regs, 4 copies, (4,3) ports, bit area 280 w2, 3.50x area
	// WSRS    512 regs, 2 copies, (4,3) ports, bit area 140 w2, 1.75x area
	// noWS-2  128 regs, 2 copies, (4,6) ports, bit area 320 w2, 1.00x area
}

// Simulating a benchmark takes one call; the result carries IPC plus
// the §5.4.2 unbalancing diagnostics.
func ExampleRunKernel() {
	res, err := wsrs.RunKernel(wsrs.ConfWSRSRC512, "gzip",
		wsrs.SimOpts{WarmupInsts: 5000, MeasureInsts: 20000})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("committed >= 20000 instructions: %v, IPC in (0, 8]: %v\n",
		res.Insts >= 20000, res.IPC > 0 && res.IPC <= 8)
	// Output:
	// committed >= 20000 instructions: true, IPC in (0, 8]: true
}

// Custom programs are assembled from source and run on any machine
// configuration.
func ExampleRunProgram() {
	res, err := wsrs.RunProgram(wsrs.ConfRR256, `
		li  %o0, 10
		li  %o1, 0
	loop:
		add %o1, %o1, %o0
		sub %o0, %o0, 1
		bgt %o0, %g0, loop
		halt
	`, nil, wsrs.SimOpts{WarmupInsts: 0, MeasureInsts: 0})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("instructions: %d\n", res.Insts)
	// Output:
	// instructions: 32
}

// Figure 4 runs are composable: pick configurations and benchmarks.
func ExampleRunFigure4() {
	cells, err := wsrs.RunFigure4(
		[]wsrs.ConfigName{wsrs.ConfRR256, wsrs.ConfWSRSRC512},
		[]string{"crafty"},
		wsrs.SimOpts{WarmupInsts: 5000, MeasureInsts: 20000})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d cells, first is %s on %q\n", len(cells), cells[0].Kernel, cells[0].Config)
	// Output:
	// 2 cells, first is crafty on "RR 256"
}
